"""Tests for typed (fine-grained) CFI: the land instruction, machine
enforcement, compiler pads, and the precision ladder."""

import pytest

from repro.errors import CFIFault
from repro.isa import build, decode, encode
from repro.machine import Machine, MachineConfig, RunStatus
from repro.minic import CompileOptions, compile_to_asm
from repro.minic.codegen import type_tag
from repro.minic.types import CHAR, FuncType, INT, PointerType
from repro.mitigations import MitigationConfig
from tests.conftest import run_c

TYPED = MitigationConfig(cfi_typed=True)


class TestLandInstruction:
    def test_encode_decode(self):
        insn = build.land(42)
        decoded, length = decode(encode(insn))
        assert decoded == insn and length == 2

    def test_executes_as_nop(self, bare_machine):
        from repro.isa import encode_many

        bare_machine.memory.write_bytes(
            0x1000, encode_many([build.land(7), build.halt()]))
        result = bare_machine.run()
        assert result.status is RunStatus.HALTED

    def test_assembler_accepts(self):
        from repro.asm import assemble

        obj = assemble(".text\nfn: land 9\nret\n")
        assert bytes(obj.text.data)[0] == 0x29
        assert bytes(obj.text.data)[1] == 9


class TestTypeTags:
    def test_stable(self):
        ft = FuncType(INT, (INT,))
        assert type_tag(ft) == type_tag(FuncType(INT, (INT,)))

    def test_distinguishes_signatures(self):
        assert type_tag(FuncType(INT, (INT,))) != type_tag(FuncType(INT, ()))
        assert type_tag(FuncType(INT, (INT,))) != type_tag(
            FuncType(INT, (PointerType(CHAR),)))

    def test_range(self):
        for ft in (FuncType(INT, ()), FuncType(INT, (INT, INT))):
            assert 1 <= type_tag(ft) <= 255


class TestMachineEnforcement:
    def _machine(self):
        machine = Machine(MachineConfig(cfi=True, cfi_mode="typed"))
        machine.memory.map_region(0x1000, 0x1000, 7)
        machine.cpu.sp = 0x1F00
        return machine

    def test_matching_pad_allowed(self):
        from repro.isa import encode_many
        from repro.isa.registers import R1, R7

        machine = self._machine()
        machine.memory.write_bytes(0x1100, encode_many([
            build.land(33), build.halt(),
        ]))
        machine.memory.write_bytes(0x1000, encode_many([
            build.mov_ri(R7, 33), build.mov_ri(R1, 0x1100), build.call_reg(R1),
        ]))
        machine.cpu.ip = 0x1000
        assert machine.run().status is RunStatus.HALTED

    def test_wrong_tag_faults(self):
        from repro.isa import encode_many
        from repro.isa.registers import R1, R7

        machine = self._machine()
        machine.memory.write_bytes(0x1100, encode_many([
            build.land(33), build.halt(),
        ]))
        machine.memory.write_bytes(0x1000, encode_many([
            build.mov_ri(R7, 34), build.mov_ri(R1, 0x1100), build.call_reg(R1),
        ]))
        machine.cpu.ip = 0x1000
        result = machine.run()
        assert isinstance(result.fault, CFIFault)
        assert "tag" in str(result.fault)

    def test_missing_pad_faults(self):
        from repro.isa import encode_many
        from repro.isa.registers import R1, R7

        machine = self._machine()
        machine.memory.write_bytes(0x1100, encode_many([build.halt()]))
        machine.memory.write_bytes(0x1000, encode_many([
            build.mov_ri(R7, 33), build.mov_ri(R1, 0x1100), build.call_reg(R1),
        ]))
        machine.cpu.ip = 0x1000
        result = machine.run()
        assert isinstance(result.fault, CFIFault)
        assert "no landing pad" in str(result.fault)

    def test_unmapped_target_is_cfi_fault(self):
        from repro.isa import encode_many
        from repro.isa.registers import R1

        machine = self._machine()
        machine.memory.write_bytes(0x1000, encode_many([
            build.mov_ri(R1, 0x70000000), build.call_reg(R1),
        ]))
        machine.cpu.ip = 0x1000
        assert isinstance(machine.run().fault, CFIFault)


class TestCompilerIntegration:
    def test_pads_emitted(self):
        asm = compile_to_asm("int f(int x) { return x; }", "m",
                             CompileOptions(cfi_landing_pads=True))
        assert "land" in asm

    def test_callsite_tag_emitted(self):
        asm = compile_to_asm("""
int f(int x) { return x; }
void main() { int (*p)(int); p = &f; p(1); }
""", "m", CompileOptions(cfi_landing_pads=True))
        expected = type_tag(FuncType(INT, (INT,)))
        assert f"mov r7, {expected}" in asm

    def test_legitimate_indirect_calls_work(self):
        result = run_c("""
int dbl(int x) { return 2 * x; }
int apply(int (*f)(int), int x) { return f(x); }
void main() { print_int(apply(&dbl, 7)); }
""", config=TYPED)
        assert result.status is RunStatus.EXITED
        assert result.output == b"14\n"

    def test_direct_calls_unaffected(self):
        result = run_c("""
int f() { return 5; }
void main() { print_int(f()); }
""", config=TYPED)
        assert result.output == b"5\n"


class TestPrecisionLadder:
    def test_ladder_shape(self):
        from repro.experiments.cfi_exp import cfi_table

        rows = {row["attack"]: row for row in cfi_table()}
        inject = rows["hijack -> injected bytes"]
        wrong_type = rows["hijack -> libc function (wrong type)"]
        same_type = rows["hijack -> same-type function"]
        # Monotone precision: each level blocks strictly more.
        assert inject["no cfi"] == "success"
        assert inject["coarse cfi"] == "detected"
        assert wrong_type["coarse cfi"] == "success"     # the coarse gap
        assert wrong_type["typed cfi"] == "detected"
        assert same_type["typed cfi"] == "success"       # the typed residue
