"""Tests for the two-pass assembler."""

import pytest

from repro.asm import assemble
from repro.errors import AssemblerError
from repro.isa import decode, decode_all
from repro.link.objfile import DATA, TEXT


class TestLabels:
    def test_label_and_reference(self):
        obj = assemble("""
.text
start:
    jmp start
""")
        assert obj.symbols["start"].offset == 0
        assert obj.text.relocations[0].symbol == "start"

    def test_label_same_line_as_instruction(self):
        obj = assemble(".text\nentry: nop\n")
        assert obj.symbols["entry"].offset == 0
        assert obj.text.size == 1

    def test_multiple_labels_same_address(self):
        obj = assemble(".text\na:\nb: nop\n")
        assert obj.symbols["a"].offset == obj.symbols["b"].offset == 0

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble(".text\nx: nop\nx: nop\n")

    def test_text_labels_are_func_kind(self):
        obj = assemble(".text\nfn: nop\n.LX: nop\n.data\nvar: .word 1\n")
        assert obj.symbols["fn"].kind == "func"
        assert obj.symbols[".LX"].kind == "label"  # CFI-excluded
        assert obj.symbols["var"].kind == "object"


class TestDirectives:
    def test_byte_word_ascii_space(self):
        obj = assemble("""
.data
bytes: .byte 1, 2, 0xff
word:  .word 0x11223344, -1
msg:   .ascii "hi"
msgz:  .asciiz "ok"
gap:   .space 4, 0xaa
""")
        data = bytes(obj.data.data)
        assert data[0:3] == bytes([1, 2, 0xFF])
        assert data[3:7] == bytes([0x44, 0x33, 0x22, 0x11])
        assert data[7:11] == bytes([0xFF] * 4)
        assert data[11:13] == b"hi"
        assert data[13:16] == b"ok\x00"
        assert data[16:20] == b"\xaa" * 4

    def test_word_with_symbol_emits_relocation(self):
        obj = assemble("""
.text
fn: ret
.data
table: .word fn, fn+4
""")
        relocs = obj.data.relocations
        assert len(relocs) == 2
        assert relocs[0].symbol == "fn" and relocs[0].addend == 0
        assert relocs[1].symbol == "fn" and relocs[1].addend == 4

    def test_align(self):
        obj = assemble(".data\n.byte 1\n.align 4\nx: .word 2\n")
        assert obj.symbols["x"].offset == 4

    def test_string_escapes(self):
        obj = assemble(r'.data' + '\n' + r's: .ascii "a\n\t\0\x41\\"')
        assert bytes(obj.data.data) == b"a\n\t\x00A\\"

    def test_global_and_entry_markers(self):
        obj = assemble("""
.text
.global fn
.entry ep
fn: ret
ep: ret
""")
        assert obj.symbols["fn"].is_global
        assert obj.symbols["ep"].is_global
        assert obj.entry_points == ["ep"]
        assert obj.protected  # .entry implies protection

    def test_kernel_marker(self):
        obj = assemble(".text\nmain: ret\n.kernel\n")
        assert obj.kernel

    def test_global_undefined_rejected(self):
        with pytest.raises(AssemblerError, match="undefined"):
            assemble(".text\n.global nothing\n")

    def test_unknown_directive_rejected(self):
        with pytest.raises(AssemblerError, match="unknown directive"):
            assemble(".frobnicate 3\n")


class TestInstructions:
    def test_every_operand_form_roundtrips(self):
        source = """
.text
all:
    nop
    halt
    mov r0, r1
    mov r2, 0x1234
    mov r3, -1
    load r0, [bp-0x10]
    store [sp+4], r1
    loadb r2, [r3]
    storeb [r4], r5
    push bp
    pop sp
    add r0, r1
    add r0, 4
    sub r1, r2
    sub r1, 8
    mul r0, r1
    div r0, r1
    mod r0, r1
    and r0, r1
    or r0, r1
    xor r0, r1
    not r0
    shl r0, 2
    shr r0, 31
    cmp r0, r1
    cmp r0, 0
    jmp all
    jmp r0
    jz all
    jnz all
    jl all
    jg all
    jle all
    jge all
    jb all
    jae all
    call all
    call r1
    ret
    sys 3
    lea r0, [bp+8]
    chk r0, 16
"""
        obj = assemble(source)
        # The whole blob must decode cleanly end to end.
        decoded = decode_all(bytes(obj.text.data))
        assert decoded[0][1].mnemonic == "nop"
        assert decoded[-1][1].mnemonic == "chk"

    def test_char_immediate(self):
        obj = assemble(".text\nmov r0, 'A'\n")
        insn, _ = decode(bytes(obj.text.data))
        assert insn.operands[1] == 0x41

    def test_symbol_in_mov_and_cmp(self):
        obj = assemble("""
.text
fn: mov r0, target
    cmp r0, target
target: ret
""")
        assert len(obj.text.relocations) == 2
        # Reloc offsets point at the imm32 within each instruction.
        assert obj.text.relocations[0].offset == 2
        assert obj.text.relocations[1].offset == 8

    def test_instructions_outside_text_rejected(self):
        with pytest.raises(AssemblerError, match="must be in .text"):
            assemble(".data\nnop\n")

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble(".text\nfoo r0\n")

    def test_bad_operands_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".text\nmov 5, r0\n")
        with pytest.raises(AssemblerError):
            assemble(".text\npush 5\n")
        with pytest.raises(AssemblerError):
            assemble(".text\nstore r0, [r1]\n")  # wrong operand order

    def test_comments_ignored(self):
        obj = assemble(".text\nnop ; trailing comment\n; full line\n")
        assert obj.text.size == 1

    def test_negative_displacement(self):
        obj = assemble(".text\nload r0, [bp-0x18]\n")
        insn, _ = decode(bytes(obj.text.data))
        assert insn.operands[1].disp == -0x18
