"""Tests for the debugger: breakpoints, watchpoints, backtrace."""

import pytest

from repro.machine.debugger import Debugger, StopReason
from repro.programs import build_fig1, build_victim
from tests.conftest import c_program


@pytest.fixture
def debugger():
    program = build_fig1()
    program.feed(b"request-bytes!!!")
    return Debugger(program)


class TestBreakpoints:
    def test_stops_at_symbol(self, debugger):
        debugger.add_breakpoint("process")
        event = debugger.cont()
        assert event.reason is StopReason.BREAKPOINT
        assert event.address == debugger.resolve("process")

    def test_resume_after_breakpoint(self, debugger):
        debugger.add_breakpoint("get_request")
        event = debugger.cont()
        assert event.reason is StopReason.BREAKPOINT
        debugger.step()  # step off the breakpoint address
        event = debugger.cont()
        assert event.reason is StopReason.EXITED

    def test_remove_breakpoint(self, debugger):
        debugger.add_breakpoint("process")
        debugger.remove_breakpoint("process")
        assert debugger.cont().reason is StopReason.EXITED

    def test_multiple_breakpoints_in_order(self, debugger):
        debugger.add_breakpoint("process")
        debugger.add_breakpoint("get_request")
        first = debugger.cont()
        assert first.address == debugger.resolve("process")
        debugger.step()
        second = debugger.cont()
        assert second.address == debugger.resolve("get_request")


class TestWatchpoints:
    def test_watch_fires_on_write(self):
        program = c_program("""
static int counter = 0;
void bump() { counter = counter + 1; }
void main() { bump(); bump(); }
""")
        debugger = Debugger(program)
        debugger.add_watchpoint("test:counter", label="counter")
        event = debugger.cont()
        assert event.reason is StopReason.WATCHPOINT
        assert "counter" in event.detail

    def test_watch_sees_overflow_clobber_return_address(self):
        """The canonical use: watch process()'s return-address slot and
        catch the overflow red-handed inside the read."""
        from repro.attacks.study import locate_overflow

        study = build_fig1()
        site = locate_overflow(study, frames_up=1)

        program = build_fig1()
        program.feed(b"A" * 32)
        debugger = Debugger(program)
        debugger.add_watchpoint(site.return_addr_slot, label="ret-slot")
        # First change: the call instruction legitimately pushing the
        # return address.  Second change: the overflow clobbering it.
        first = debugger.cont()
        assert first.reason is StopReason.WATCHPOINT
        second = debugger.cont()
        assert second.reason is StopReason.WATCHPOINT
        assert "41414141" in second.detail


class TestInspection:
    def test_backtrace_shows_call_chain(self, debugger):
        debugger.add_breakpoint("get_request")
        debugger.cont()
        # Enter the function so the frame is set up.
        for _ in range(2):
            debugger.step()
        names = [frame.function.split("+")[0] for frame in debugger.backtrace()]
        assert names[0] == "get_request"
        assert "process" in names
        assert "main" in names

    def test_symbolize(self, debugger):
        process = debugger.resolve("process")
        assert debugger.symbolize(process) == "process"
        assert debugger.symbolize(process + 2) == "process+0x2"

    def test_registers_snapshot(self, debugger):
        state = debugger.registers()
        assert state["ip"] == debugger.program.image.entry
        assert state["sp"] == debugger.program.image.initial_sp

    def test_disassemble_around(self, debugger):
        listing = debugger.disassemble_around("process", count=3)
        assert "push bp" in listing
        assert "process" in listing

    def test_current_ip_marked(self, debugger):
        listing = debugger.disassemble_around(debugger.machine.cpu.ip, count=1)
        assert listing.startswith(" -> ")

    def test_dump_annotates_code_pointers(self, debugger):
        debugger.add_breakpoint("get_request")
        debugger.cont()
        for _ in range(2):
            debugger.step()
        bp = debugger.machine.cpu.regs[9]
        dump = debugger.dump(bp, words=2)
        # The return-address slot points into process().
        assert "process" in dump

    def test_dump_handles_unmapped(self, debugger):
        assert "<unmapped>" in debugger.dump(0x70000000, words=1)


class TestEndConditions:
    def test_exit_event(self, debugger):
        assert debugger.cont().reason is StopReason.EXITED

    def test_fault_event(self):
        program = build_fig1()
        program.feed(b"A" * 32)
        debugger = Debugger(program)
        event = debugger.cont()
        assert event.reason is StopReason.FAULTED
        assert event.fault is not None

    def test_limit_event(self):
        program = c_program("void main() { while (1) { } }")
        debugger = Debugger(program)
        event = debugger.cont(max_instructions=50)
        assert event.reason is StopReason.LIMIT
