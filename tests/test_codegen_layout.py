"""Structural tests for the code generator's frame layout and calling
convention -- the exact geometry Figure 1 (and every attack) relies on."""

import pytest

from repro.attacks.study import locate_overflow, run_until_syscall
from repro.isa.registers import BP, SP
from repro.machine import syscalls
from repro.minic import CompileOptions, compile_to_asm
from tests.conftest import c_program


def stop_at_read(source: str, stdin: bytes = b"", options=None, config=None):
    from repro.mitigations import NONE

    program = c_program(source, config or NONE, options)
    program.feed(stdin or b"\x00" * 64)
    machine = run_until_syscall(program, syscalls.SYS_READ)
    return program, machine


class TestFrameGeometry:
    def test_locals_in_declaration_order_below_bp(self):
        """First-declared local sits nearest BP; arrays below scalars
        declared before them (the data-only attack's prerequisite)."""
        source = """
void main() {
    int first = 0;
    char buf[16];
    read(0, buf, 16);
    print_int(first);
}
"""
        program, machine = stop_at_read(source)
        bp = machine.cpu.regs[BP]
        buf_addr = machine.cpu.regs[1]
        assert bp - 4 - 16 == buf_addr  # first at bp-4, buf below it

    def test_canary_shifts_locals_down_one_word(self):
        source = """
void main() {
    char buf[16];
    read(0, buf, 16);
}
"""
        plain_program, plain_machine = stop_at_read(source)
        plain_offset = plain_machine.cpu.regs[BP] - plain_machine.cpu.regs[1]

        canary_options = CompileOptions(stack_canaries=True)
        from repro.mitigations import CANARY

        canary_program, canary_machine = stop_at_read(
            source, options=canary_options, config=CANARY)
        canary_offset = canary_machine.cpu.regs[BP] - canary_machine.cpu.regs[1]
        assert canary_offset == plain_offset + 4

    def test_canary_slot_holds_loaded_value(self):
        from repro.mitigations import CANARY

        source = """
void main() {
    char buf[16];
    read(0, buf, 16);
}
"""
        program, machine = stop_at_read(
            source, options=CompileOptions(stack_canaries=True), config=CANARY)
        bp = machine.cpu.regs[BP]
        slot = machine.memory.read_word(bp - 4)
        cell = machine.memory.read_word(program.image.canary_cell)
        assert slot == cell != 0

    def test_args_at_bp_plus_8_and_up(self):
        source = """
void callee(int a, int b, int c) {
    char sink[4];
    read(0, sink, a + b + c - 60);   // forces all three to be loaded
}
void main() { callee(10, 20, 30); }
"""
        program, machine = stop_at_read(source)
        bp = machine.cpu.regs[BP]
        assert machine.memory.read_word(bp + 8) == 10
        assert machine.memory.read_word(bp + 12) == 20
        assert machine.memory.read_word(bp + 16) == 30

    def test_return_address_above_saved_bp(self):
        source = """
void inner() {
    char buf[4];
    read(0, buf, 4);
}
void main() { inner(); }
"""
        program, machine = stop_at_read(source)
        bp = machine.cpu.regs[BP]
        saved_bp = machine.memory.read_word(bp)
        return_addr = machine.memory.read_word(bp + 4)
        text = program.image.segment_named("text")
        stack_lo, stack_hi = program.image.stack_range
        assert stack_lo <= saved_bp < stack_hi
        assert text.addr <= return_addr < text.end

    def test_asan_redzones_surround_arrays(self):
        from repro.mitigations import TESTING

        source = """
void main() {
    char buf[16];
    read(0, buf, 16);
}
"""
        program, machine = stop_at_read(
            source, options=CompileOptions(asan=True), config=TESTING)
        buf_addr = machine.cpu.regs[1]
        assert (buf_addr - 1) & 0xFFFFFFFF in machine._redzones  # below
        assert (buf_addr + 16) & 0xFFFFFFFF in machine._redzones  # above
        assert buf_addr not in machine._redzones  # payload clean


class TestCallingConvention:
    def test_args_pushed_right_to_left(self):
        asm = compile_to_asm("""
int f(int a, int b) { return a; }
void main() { f(1, 2); }
""", "m")
        # In main's body, the constant 2 (second arg) is pushed first.
        body = asm[asm.index("main:"):]
        first_push = body.index("mov r0, 2")
        second_push = body.index("mov r0, 1")
        assert first_push < second_push

    def test_caller_cleans_arguments(self):
        asm = compile_to_asm("""
int f(int a, int b, int c) { return a; }
void main() { f(1, 2, 3); }
""", "m")
        assert "add sp, 12" in asm

    def test_return_value_in_r0(self):
        from tests.conftest import run_c

        result = run_c("int main() { return 99; }")
        assert result.exit_code == 99

    def test_prologue_epilogue_shape(self):
        asm = compile_to_asm("void f() { int x; x = 1; }", "m")
        body = asm[asm.index("f:"):]
        assert body.index("push bp") < body.index("mov bp, sp")
        # ".Lret_f" also contains "ret": anchor the instruction itself.
        assert (body.index("mov sp, bp") < body.index("pop bp")
                < body.index("\n    ret"))
