"""Tests for the MinC lexer, parser, and semantic analysis."""

import pytest

from repro.errors import CompileError
from repro.minic import ast, parse
from repro.minic.lexer import tokenize
from repro.minic.sema import analyze
from repro.minic.types import ArrayType, CHAR, FuncType, INT, PointerType


class TestLexer:
    def test_keywords_vs_identifiers(self):
        kinds = [t.kind for t in tokenize("int intx if ifx")]
        assert kinds == ["kw:int", "ident", "kw:if", "ident", "eof"]

    def test_numbers(self):
        tokens = tokenize("42 0x2A 0")
        assert [t.value for t in tokens[:-1]] == [42, 42, 0]

    def test_char_literals(self):
        tokens = tokenize(r"'A' '\n' '\0' '\\'")
        assert [t.value for t in tokens[:-1]] == [65, 10, 0, 92]

    def test_string_with_escapes(self):
        token = tokenize(r'"a\n\x41"')[0]
        assert token.value == "a\nA"

    def test_comments_skipped(self):
        tokens = tokenize("a // line\n b /* block\n more */ c")
        assert [t.value for t in tokens[:-1]] == ["a", "b", "c"]

    def test_multichar_operators_maximal_munch(self):
        kinds = [t.kind for t in tokenize("<= < == = && & << <")]
        assert kinds[:-1] == ["<=", "<", "==", "=", "&&", "&", "<<", "<"]

    def test_positions_tracked(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].col) == (1, 1)
        assert (tokens[1].line, tokens[1].col) == (2, 3)

    def test_unterminated_string(self):
        with pytest.raises(CompileError, match="unterminated"):
            tokenize('"abc')

    def test_unexpected_character(self):
        with pytest.raises(CompileError, match="unexpected"):
            tokenize("a @ b")


class TestParser:
    def test_function_and_params(self):
        program = parse("int add(int a, int b) { return a + b; }")
        func = program.functions[0]
        assert func.name == "add"
        assert [p.name for p in func.params] == ["a", "b"]
        assert func.return_type is INT

    def test_prototype(self):
        program = parse("int get_secret(int pin);")
        assert program.functions[0].body is None

    def test_pointer_and_array_declarators(self):
        program = parse("""
char *p;
int arr[4];
char buf[];
""")
        types = [g.var_type for g in program.globals]
        assert types[0] == PointerType(CHAR)
        assert types[1] == ArrayType(INT, 4)
        assert types[2] == ArrayType(CHAR, None)

    def test_function_pointer_param(self):
        program = parse("int f(int (*cb)(int, char*)) { return cb(1, 0); }")
        param_type = program.functions[0].params[0].var_type
        assert isinstance(param_type, FuncType)
        assert param_type.params == (INT, PointerType(CHAR))

    def test_empty_funcptr_params(self):
        program = parse("int f(int (*get_pin)()) { return get_pin(); }")
        assert program.functions[0].params[0].var_type == FuncType(INT, ())

    def test_global_initialisers(self):
        program = parse("""
static int x = 5;
static int y = -3;
char msg[8] = "hi";
int table[] = {1, 2, 3};
""")
        inits = [g.init for g in program.globals]
        assert inits[0] == 5
        assert inits[1] == -3
        assert inits[2] == b"hi\x00"
        assert inits[3] == [1, 2, 3]
        assert program.globals[0].static
        assert not program.globals[2].static

    def test_precedence(self):
        program = parse("void f() { int x = 1 + 2 * 3; }")
        decl = program.functions[0].body.statements[0]
        assert isinstance(decl.init, ast.Binary) and decl.init.op == "+"
        assert decl.init.right.op == "*"

    def test_unary_chain(self):
        program = parse("void f(int *p) { int x = -*p; }")
        init = program.functions[0].body.statements[0].init
        assert isinstance(init, ast.Unary) and init.op == "-"
        assert isinstance(init.operand, ast.Deref)

    def test_assignment_right_associative(self):
        program = parse("void f() { int a; int b; a = b = 1; }")
        stmt = program.functions[0].body.statements[2]
        assert isinstance(stmt.expr, ast.Assign)
        assert isinstance(stmt.expr.value, ast.Assign)

    def test_for_with_decl(self):
        program = parse("void f() { for (int i = 0; i < 3; i = i + 1) {} }")
        loop = program.functions[0].body.statements[0]
        assert isinstance(loop, ast.For)
        assert isinstance(loop.init, ast.VarDecl)

    def test_dangling_else(self):
        program = parse("void f(int a) { if (a) if (a) a = 1; else a = 2; }")
        outer = program.functions[0].body.statements[0]
        assert outer.else_branch is None
        assert outer.then_branch.else_branch is not None

    def test_call_and_index_postfix(self):
        program = parse("int g(int x) { return x; } void f(int a[]) { g(a[2]); }")
        call = program.functions[1].body.statements[0].expr
        assert isinstance(call, ast.Call)
        assert isinstance(call.args[0], ast.Index)

    def test_syntax_error_reports_line(self):
        with pytest.raises(CompileError, match="line 2"):
            parse("void f() {\n int x = ; \n}")

    def test_void_variable_rejected(self):
        with pytest.raises(CompileError, match="void"):
            parse("void x;")


def analyze_source(source, safe=False):
    return analyze(parse(source), safe=safe)


class TestSema:
    def test_undeclared_identifier(self):
        with pytest.raises(CompileError, match="undeclared"):
            analyze_source("void f() { x = 1; }")

    def test_undeclared_function(self):
        with pytest.raises(CompileError, match="undeclared function"):
            analyze_source("void f() { missing(); }")

    def test_builtins_resolve(self):
        program = analyze_source("void f() { print_int(rand()); }")
        call = program.functions[0].body.statements[0].expr
        assert call.mode == "builtin"

    def test_user_function_shadows_builtin(self):
        program = analyze_source("""
int rand() { return 4; }
void f() { print_int(rand()); }
""")
        call = program.functions[1].body.statements[0].expr
        inner = call.args[0]
        assert inner.mode == "direct"

    def test_arity_checked(self):
        with pytest.raises(CompileError, match="arguments"):
            analyze_source("int g(int a) { return a; } void f() { g(1, 2); }")
        with pytest.raises(CompileError, match="arguments"):
            analyze_source("void f() { exit(); }")

    def test_redeclaration_rejected(self):
        with pytest.raises(CompileError, match="redeclaration"):
            analyze_source("void f() { int a; int a; }")

    def test_shadowing_in_nested_block_allowed(self):
        analyze_source("void f() { int a; { int a; a = 1; } }")

    def test_redefinition_rejected(self):
        with pytest.raises(CompileError, match="redefinition"):
            analyze_source("void f() {} void f() {}")

    def test_prototype_then_definition(self):
        analyze_source("int g(int x); int g(int x) { return x; }")

    def test_conflicting_prototype(self):
        with pytest.raises(CompileError, match="conflicting"):
            analyze_source("int g(int x); char g(int x) { return 0; }")

    def test_break_outside_loop(self):
        with pytest.raises(CompileError, match="outside"):
            analyze_source("void f() { break; }")

    def test_return_type_checked(self):
        with pytest.raises(CompileError, match="void function"):
            analyze_source("void f() { return 1; }")
        with pytest.raises(CompileError, match="without a value"):
            analyze_source("int f() { return; }")

    def test_array_assignment_rejected(self):
        with pytest.raises(CompileError, match="array"):
            analyze_source("void f() { int a[4]; int b[4]; a = b; }")

    def test_deref_requires_pointer(self):
        with pytest.raises(CompileError, match="dereference"):
            analyze_source("void f() { int a; int b = *a; }")

    def test_pointer_arithmetic_types(self):
        program = analyze_source("void f(int *p) { int *q = p + 2; }")
        init = program.functions[0].body.statements[0].init
        assert init.type == PointerType(INT)

    def test_pointer_plus_pointer_rejected(self):
        with pytest.raises(CompileError, match="invalid operands"):
            analyze_source("void f(int *p, int *q) { int x = p + q; }")

    def test_unsized_local_array_rejected(self):
        with pytest.raises(CompileError, match="size"):
            analyze_source("void f() { int a[]; }")

    def test_int_pointer_interchange_allowed_in_unsafe_mode(self):
        # The C-ish laxity the paper's vulnerable programs rely on.
        analyze_source("void f(char *p) { int x = p; char *q = x; }")


class TestSafeMode:
    def test_unsized_array_param_rejected(self):
        with pytest.raises(CompileError, match="unsized array"):
            analyze_source("void f(char buf[]) {}", safe=True)

    def test_sized_array_param_allowed(self):
        analyze_source(
            "void f(char buf[16]) { buf[0] = 1; }", safe=True)

    def test_addrof_rejected(self):
        with pytest.raises(CompileError, match="taking addresses"):
            analyze_source("void f() { int a; int *p = &a; }", safe=True)

    def test_addrof_function_allowed(self):
        analyze_source("""
int cb() { return 1; }
void f(int (*g)()) { f(&cb); }
""", safe=True)

    def test_deref_rejected(self):
        with pytest.raises(CompileError, match="dereference"):
            analyze_source("void f(int *p) { int x = *p; }", safe=True)

    def test_array_decay_rejected(self):
        with pytest.raises(CompileError, match="decay"):
            analyze_source(
                "void g(char *p) {} void f() { char b[4]; g(b); }", safe=True)

    def test_indexing_sized_array_allowed(self):
        analyze_source("void f() { int a[4]; a[2] = 1; }", safe=True)

    def test_indexing_pointer_rejected(self):
        with pytest.raises(CompileError, match="statically sized"):
            analyze_source("void f(char *p) { p[0] = 1; }", safe=True)

    def test_read_into_sized_array_allowed(self):
        program = analyze_source(
            "void f() { char b[8]; read(0, b, 8); }", safe=True)
        call = program.functions[0].body.statements[1].expr
        assert call.clamp_size == 8

    def test_read_into_pointer_rejected(self):
        with pytest.raises(CompileError, match="statically sized"):
            analyze_source("void f(char *p) { read(0, p, 8); }", safe=True)

    def test_returning_local_array_rejected(self):
        # Rejected by the decay rule (the escape check is the backstop).
        with pytest.raises(CompileError, match="safe mode"):
            analyze_source("char *f() { char b[4]; return b; }", safe=True)

    def test_passing_smaller_array_rejected(self):
        with pytest.raises(CompileError, match="at least"):
            analyze_source(
                "void g(char b[16]) {} void f() { char s[8]; g(s); }",
                safe=True)
