"""Tests for the protected-module access-control model (Section IV-A)."""

import pytest

from repro.errors import ProtectionFault
from repro.machine.access import AccessKind
from repro.pma.module import PMAController, ProtectedModule


def make_module(name="mod", text=(0x1000, 0x1100), data=(0x2000, 0x2100),
                entries=(0x1000,)):
    return ProtectedModule(
        name=name,
        text_start=text[0], text_end=text[1],
        data_start=data[0], data_end=data[1],
        entry_points=frozenset(entries),
    )


@pytest.fixture
def controller():
    pma = PMAController(b"\x07" * 32)
    pma.register(make_module(), b"\x00" * 0x100)
    return pma


class TestDescriptor:
    def test_entry_point_must_be_in_text(self):
        with pytest.raises(ValueError, match="entry point"):
            make_module(entries=(0x2000,))

    def test_empty_text_rejected(self):
        with pytest.raises(ValueError, match="empty text"):
            make_module(text=(0x1000, 0x1000))

    def test_contains(self):
        module = make_module()
        assert module.in_text(0x1000) and module.in_text(0x10FF)
        assert not module.in_text(0x1100)
        assert module.in_data(0x2000)
        assert module.contains(0x20FF)
        assert not module.contains(0x3000)

    def test_overlap_rejected_at_registration(self, controller):
        with pytest.raises(ProtectionFault, match="overlaps"):
            controller.register(
                make_module("other", text=(0x10F0, 0x1200), data=(0x3000, 0x3100),
                            entries=(0x10F0,)),
                b"x",
            )


class TestRuleThree_EntryPoints:
    """Rule 3: the IP enters a module only at entry points."""

    def test_entry_at_entry_point_allowed(self, controller):
        module = controller.modules[0]
        assert controller.check_fetch(None, 0x1000) is module

    def test_entry_mid_code_denied(self, controller):
        with pytest.raises(ProtectionFault, match="bypassing"):
            controller.check_fetch(None, 0x1004)

    def test_execution_within_module_allowed(self, controller):
        module = controller.modules[0]
        assert controller.check_fetch(module, 0x1050) is module

    def test_leaving_module_allowed(self, controller):
        module = controller.modules[0]
        assert controller.check_fetch(module, 0x9000) is None

    def test_outside_to_outside_unaffected(self, controller):
        assert controller.check_fetch(None, 0x9000) is None

    def test_data_section_never_executable(self, controller):
        module = controller.modules[0]
        with pytest.raises(ProtectionFault, match="execute data"):
            controller.check_fetch(None, 0x2010)
        with pytest.raises(ProtectionFault, match="execute data"):
            controller.check_fetch(module, 0x2010)

    def test_cross_module_requires_entry(self):
        pma = PMAController()
        first = pma.register(make_module("a"), b"a")
        pma.register(
            make_module("b", text=(0x5000, 0x5100), data=(0x6000, 0x6100),
                        entries=(0x5000,)),
            b"b",
        )
        # From inside a, jumping into b's middle is denied...
        with pytest.raises(ProtectionFault):
            pma.check_fetch(first, 0x5010)
        # ...but b's entry point is fine.
        assert pma.check_fetch(first, 0x5000).name == "b"


class TestRuleOne_OutsideAccess:
    """Rule 1: outside code cannot touch module memory at all."""

    @pytest.mark.parametrize("kind", [AccessKind.READ, AccessKind.WRITE])
    @pytest.mark.parametrize("addr", [0x1000, 0x10FF, 0x2000, 0x20FF])
    def test_outside_denied(self, controller, kind, addr):
        with pytest.raises(ProtectionFault, match="denied"):
            controller.check_data_access(None, kind, addr, 4)

    def test_partial_overlap_denied(self, controller):
        # A read starting before the module but reaching into it.
        with pytest.raises(ProtectionFault):
            controller.check_data_access(None, AccessKind.READ, 0x0FFC, 8)

    def test_outside_memory_unaffected(self, controller):
        controller.check_data_access(None, AccessKind.WRITE, 0x9000, 4)

    def test_other_module_is_outside(self):
        pma = PMAController()
        first = pma.register(make_module("a"), b"a")
        pma.register(
            make_module("b", text=(0x5000, 0x5100), data=(0x6000, 0x6100),
                        entries=(0x5000,)),
            b"b",
        )
        with pytest.raises(ProtectionFault):
            pma.check_data_access(first, AccessKind.READ, 0x6000, 4)


class TestRuleTwo_InsideAccess:
    """Rule 2: inside, data is read/write and code is execute-only."""

    def test_module_reads_and_writes_own_data(self, controller):
        module = controller.modules[0]
        controller.check_data_access(module, AccessKind.READ, 0x2000, 4)
        controller.check_data_access(module, AccessKind.WRITE, 0x2000, 4)

    def test_module_reads_own_text(self, controller):
        module = controller.modules[0]
        controller.check_data_access(module, AccessKind.READ, 0x1000, 4)

    def test_module_cannot_write_own_text(self, controller):
        module = controller.modules[0]
        with pytest.raises(ProtectionFault, match="code section"):
            controller.check_data_access(module, AccessKind.WRITE, 0x1000, 4)

    def test_module_accesses_outside_memory(self, controller):
        """Modules may read/write unprotected memory (e.g. to fetch
        arguments from the caller's stack)."""
        module = controller.modules[0]
        controller.check_data_access(module, AccessKind.READ, 0x9000, 4)
        controller.check_data_access(module, AccessKind.WRITE, 0x9000, 4)


class TestHardwareServices:
    def test_measurement_and_key_set_at_registration(self, controller):
        module = controller.modules[0]
        assert len(module.measurement) == 32
        assert len(module.module_key) == 32

    def test_different_code_different_key(self):
        pma = PMAController(b"\x07" * 32)
        one = pma.register(make_module("a"), b"AAAA")
        two = pma.register(
            make_module("b", text=(0x5000, 0x5100), data=(0x6000, 0x6100),
                        entries=(0x5000,)),
            b"BBBB",
        )
        assert one.module_key != two.module_key

    def test_same_code_same_key_across_controllers(self):
        first = PMAController(b"\x07" * 32).register(make_module(), b"CODE")
        second = PMAController(b"\x07" * 32).register(make_module(), b"CODE")
        assert first.module_key == second.module_key

    def test_different_platform_key_different_module_key(self):
        first = PMAController(b"\x01" * 32).register(make_module(), b"CODE")
        second = PMAController(b"\x02" * 32).register(make_module(), b"CODE")
        assert first.module_key != second.module_key

    def test_counters_keyed_by_measurement(self, controller):
        module = controller.modules[0]
        assert controller.counter_read(module) == 0
        assert controller.counter_increment(module) == 1
        assert controller.counter_increment(module) == 2
        assert controller.counter_read(module) == 2

    def test_counter_store_shared_across_boots(self):
        store: dict = {}
        first = PMAController(b"\x07" * 32, store)
        module = first.register(make_module(), b"CODE")
        first.counter_increment(module)
        second = PMAController(b"\x07" * 32, store)
        module_again = second.register(make_module(), b"CODE")
        assert second.counter_read(module_again) == 1

    def test_tampered_module_gets_fresh_counter(self):
        store: dict = {}
        first = PMAController(b"\x07" * 32, store)
        module = first.register(make_module(), b"CODE")
        first.counter_increment(module)
        second = PMAController(b"\x07" * 32, store)
        tampered = second.register(make_module(), b"EVIL")
        assert second.counter_read(tampered) == 0

    def test_attest_depends_on_key_and_nonce(self, controller):
        module = controller.modules[0]
        one = controller.attest(module, b"n1")
        two = controller.attest(module, b"n2")
        assert one != two and len(one) == 32

    def test_seal_unseal_roundtrip(self, controller):
        module = controller.modules[0]
        blob = controller.seal(module, b"state", b"\x00" * 16)
        assert controller.unseal(module, blob) == b"state"
