"""Tests for the command-line interface."""

import pytest

from repro.__main__ import build_parser, main

HELLO = """
void main() {
    char buf[8];
    int n = read(0, buf, 8);
    write(1, buf, n);
}
"""

VULNERABLE = """
void main() {
    char buf[16];
    read(0, buf, 64);
}
"""


@pytest.fixture
def hello_file(tmp_path):
    path = tmp_path / "hello.c"
    path.write_text(HELLO)
    return str(path)


@pytest.fixture
def vulnerable_file(tmp_path):
    path = tmp_path / "vuln.c"
    path.write_text(VULNERABLE)
    return str(path)


class TestRun:
    def test_run_echo(self, hello_file, capsys):
        code = main(["run", hello_file, "--stdin", "ping"])
        captured = capsys.readouterr()
        assert code == 0
        assert "ping" in captured.out
        assert "exited" in captured.err

    def test_run_hex_input(self, hello_file, capsys):
        main(["run", hello_file, "--stdin-hex", "41424344"])
        assert "ABCD" in capsys.readouterr().out

    def test_run_crash_reports_fault(self, vulnerable_file, capsys):
        code = main(["run", vulnerable_file, "--stdin", "A" * 40])
        captured = capsys.readouterr()
        assert code == 1
        assert "fault" in captured.err

    def test_run_with_canary_detects(self, vulnerable_file, capsys):
        main(["run", vulnerable_file, "--mitigations", "canary",
              "--stdin", "A" * 40])
        assert "canary" in capsys.readouterr().err.lower()

    def test_run_optimized(self, hello_file, capsys):
        code = main(["run", hello_file, "--stdin", "x", "--optimize"])
        assert code == 0


class TestListings:
    def test_asm_output(self, hello_file, capsys):
        assert main(["asm", hello_file]) == 0
        out = capsys.readouterr().out
        assert "push bp" in out and ".text" in out

    def test_asm_with_mitigations(self, hello_file, capsys):
        main(["asm", hello_file, "--mitigations", "canary"])
        assert "__canary" in capsys.readouterr().out

    def test_disasm_output(self, hello_file, capsys):
        assert main(["disasm", hello_file]) == 0
        out = capsys.readouterr().out
        assert "0x00000000" in out and "push bp" in out


class TestDebug:
    def test_debug_breakpoint_report(self, hello_file, capsys):
        code = main(["debug", hello_file, "-b", "main", "--stdin", "x"])
        out = capsys.readouterr().out
        assert code == 0
        assert "breakpoint" in out
        assert "backtrace:" in out
        assert "registers:" in out


class TestParser:
    def test_unknown_posture_rejected(self, hello_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", hello_file,
                                       "--mitigations", "bogus"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
