"""Tests for the machine facade: syscalls, policies, run loop."""

import pytest

from repro.errors import (
    CanaryFault,
    CFIFault,
    ExecutionLimitExceeded,
    MemoryFault,
    PermissionFault,
    RedZoneFault,
    ShadowStackFault,
    SyscallFault,
)
from repro.isa import BP, Mem, R0, R1, R2, SP, build, encode_many
from repro.machine import Machine, MachineConfig, RunStatus
from repro.machine import syscalls
from repro.machine.memory import PERM_R, PERM_RW, PERM_RX, PERM_RWX


def make_machine(config=None):
    machine = Machine(config or MachineConfig())
    machine.memory.map_region(0x1000, 0x1000, PERM_RX)
    machine.memory.map_region(0x00200000, 0x10000, PERM_RW)
    machine.cpu.ip = 0x1000
    machine.cpu.sp = 0x0020F000
    return machine


def run_program(machine, instructions, **kwargs):
    machine.memory.map_region(0x1000, 0x1000, PERM_RWX)
    machine.memory.write_bytes(0x1000, encode_many(instructions))
    machine.memory.set_perms(0x1000, 0x1000, PERM_RX)
    machine.cpu.ip = 0x1000
    return machine.run(**kwargs)


class TestRunLoop:
    def test_exit_status_and_code(self):
        machine = make_machine()
        result = run_program(machine, [build.mov_ri(R0, 42), build.sys(3)])
        assert result.status is RunStatus.EXITED
        assert result.exit_code == 42

    def test_negative_exit_code(self):
        machine = make_machine()
        result = run_program(machine, [build.mov_ri(R0, -7), build.sys(3)])
        assert result.exit_code == -7

    def test_fault_captured_not_raised(self):
        machine = make_machine()
        result = run_program(machine, [build.load(R0, Mem(R1, 0x70000000))])
        assert result.status is RunStatus.FAULT
        assert isinstance(result.fault, MemoryFault)

    def test_instruction_limit(self):
        machine = make_machine()
        result = run_program(machine, [build.jmp_abs(0x1000)],
                             max_instructions=100)
        assert isinstance(result.fault, ExecutionLimitExceeded)
        assert result.status is RunStatus.FAULT

    def test_instruction_count(self):
        machine = make_machine()
        result = run_program(machine, [build.nop()] * 5 + [build.halt()])
        assert result.instructions == 6

    def test_trace_recorded_when_enabled(self):
        machine = make_machine(MachineConfig(trace=True))
        run_program(machine, [build.nop(), build.halt()])
        assert [insn.mnemonic for _, insn in machine.trace] == ["nop", "halt"]

    def test_invalid_syscall_faults(self):
        machine = make_machine()
        result = run_program(machine, [build.sys(99)])
        assert isinstance(result.fault, SyscallFault)

    def test_syscall_hook_called(self):
        machine = make_machine()
        seen = []
        machine.syscall_hooks.append(lambda m, n: seen.append(n))
        run_program(machine, [build.mov_ri(R0, 0), build.sys(3)])
        assert seen == [3]


class TestIOSyscalls:
    def test_read_copies_input(self):
        machine = make_machine()
        machine.input.feed(b"hello")
        run_program(machine, [
            build.mov_ri(R0, 0), build.mov_ri(R1, 0x00200100),
            build.mov_ri(R2, 5), build.sys(syscalls.SYS_READ), build.halt(),
        ])
        assert machine.memory.read_bytes(0x00200100, 5) == b"hello"
        assert machine.cpu.regs[R0] == 5

    def test_read_returns_available_bytes(self):
        machine = make_machine()
        machine.input.feed(b"ab")
        run_program(machine, [
            build.mov_ri(R1, 0x00200100), build.mov_ri(R2, 100),
            build.sys(syscalls.SYS_READ), build.halt(),
        ])
        assert machine.cpu.regs[R0] == 2

    def test_read_at_eof_returns_zero(self):
        machine = make_machine()
        run_program(machine, [
            build.mov_ri(R1, 0x00200100), build.mov_ri(R2, 4),
            build.sys(syscalls.SYS_READ), build.halt(),
        ])
        assert machine.cpu.regs[R0] == 0

    def test_write_emits_output(self):
        machine = make_machine()
        machine.memory.write_bytes(0x00200100, b"out!")
        result = run_program(machine, [
            build.mov_ri(R0, 1), build.mov_ri(R1, 0x00200100),
            build.mov_ri(R2, 4), build.sys(syscalls.SYS_WRITE), build.halt(),
        ])
        assert result.output == b"out!"

    def test_write_overread_faults_on_unmapped(self):
        machine = make_machine()
        result = run_program(machine, [
            build.mov_ri(R1, 0x0020FF00), build.mov_ri(R2, 0x10000),
            build.sys(syscalls.SYS_WRITE),
        ])
        assert isinstance(result.fault, MemoryFault)

    def test_print_int_signed(self):
        machine = make_machine()
        result = run_program(machine, [
            build.mov_ri(R0, -5), build.sys(syscalls.SYS_PRINT_INT), build.halt(),
        ])
        assert result.output == b"-5\n"

    def test_spawn_shell_sets_flag(self):
        machine = make_machine()
        result = run_program(machine, [build.sys(syscalls.SYS_SPAWN_SHELL),
                                       build.halt()])
        assert result.shell_spawned
        assert machine.shell.spawn_count == 1

    def test_rand_is_seeded(self):
        values = []
        for _ in range(2):
            machine = make_machine(MachineConfig(rng_seed=9))
            run_program(machine, [build.sys(syscalls.SYS_RAND), build.halt()])
            values.append(machine.cpu.regs[R0])
        assert values[0] == values[1]

    def test_canary_fail_syscall(self):
        machine = make_machine()
        result = run_program(machine, [build.sys(syscalls.SYS_CANARY_FAIL)])
        assert isinstance(result.fault, CanaryFault)

    def test_pma_syscalls_require_module(self):
        machine = make_machine()
        for number in (syscalls.SYS_ATTEST, syscalls.SYS_SEAL,
                       syscalls.SYS_UNSEAL, syscalls.SYS_CTR_READ,
                       syscalls.SYS_CTR_INCR):
            machine.cpu.ip = 0x1000
            result = run_program(machine, [build.sys(number)])
            assert isinstance(result.fault, SyscallFault), number


class TestPagePermissions:
    def test_write_to_text_denied(self):
        machine = make_machine()
        result = run_program(machine, [
            build.mov_ri(R1, 0x1000),
            build.store(R0, Mem(R1, 0)),
        ])
        assert isinstance(result.fault, PermissionFault)

    def test_execute_data_denied(self):
        machine = make_machine()
        result = run_program(machine, [build.jmp_abs(0x00200100)])
        assert isinstance(result.fault, PermissionFault)

    def test_read_requires_r(self):
        machine = make_machine()
        machine.memory.map_region(0x00300000, 0x1000, 0)
        result = run_program(machine, [
            build.mov_ri(R1, 0x00300000), build.load(R0, Mem(R1, 0)),
        ])
        assert isinstance(result.fault, PermissionFault)

    def test_kernel_bypasses_page_permissions(self):
        machine = make_machine()
        machine.memory.map_region(0x00300000, 0x1000, PERM_R)
        machine.memory.map_region(0xC0000000, 0x1000, PERM_RX)
        machine.add_kernel_region(0xC0000000, 0xC0001000)
        machine.memory.map_region(0xC0000000, 0x1000, PERM_RWX)
        machine.memory.write_bytes(0xC0000000, encode_many([
            build.mov_ri(R1, 0x00300000),
            build.mov_ri(R0, 0xBEEF),
            build.store(R0, Mem(R1, 0)),   # read-only page, but kernel
            build.halt(),
        ]))
        machine.memory.set_perms(0xC0000000, 0x1000, PERM_RX)
        machine.cpu.ip = 0xC0000000
        result = machine.run()
        assert result.status is RunStatus.HALTED
        assert machine.memory.read_word(0x00300000) == 0xBEEF

    def test_kernel_still_faults_on_unmapped(self):
        machine = make_machine()
        machine.memory.map_region(0xC0000000, 0x1000, PERM_RX)
        machine.add_kernel_region(0xC0000000, 0xC0001000)
        machine.memory.map_region(0xC0000000, 0x1000, PERM_RWX)
        machine.memory.write_bytes(0xC0000000, encode_many([
            build.mov_ri(R1, 0x70000000), build.load(R0, Mem(R1, 0)),
        ]))
        machine.cpu.ip = 0xC0000000
        result = machine.run()
        assert isinstance(result.fault, MemoryFault)


class TestShadowStack:
    def test_balanced_calls_pass(self):
        machine = make_machine(MachineConfig(shadow_stack=True))
        result = run_program(machine, [
            build.call_abs(0x1008),           # 5 bytes
            build.halt(), build.nop(), build.nop(),  # pad to 0x1008
            build.ret(),
        ])
        assert result.status is RunStatus.HALTED

    def test_overwritten_return_detected(self):
        machine = make_machine(MachineConfig(shadow_stack=True))
        # call a function that overwrites its own return address
        result = run_program(machine, [
            build.call_abs(0x1006),                    # 0x1000: 5 bytes
            build.halt(),                              # 0x1005
            build.mov_ri(R0, 0xDEAD),                  # 0x1006: 6 bytes
            build.store(R0, Mem(SP, 0)),               # overwrite ret slot
            build.ret(),
        ])
        assert isinstance(result.fault, ShadowStackFault)

    def test_ret_without_call_detected(self):
        machine = make_machine(MachineConfig(shadow_stack=True))
        machine.memory.write_word(machine.cpu.sp - 4, 0x1000)
        machine.cpu.sp -= 4
        result = run_program(machine, [build.ret()])
        assert isinstance(result.fault, ShadowStackFault)

    def test_disabled_by_default(self):
        machine = make_machine()
        result = run_program(machine, [
            build.call_abs(0x1006),
            build.halt(),
            build.mov_ri(R0, 0x1005),
            build.store(R0, Mem(SP, 0)),
            build.ret(),                 # returns to 0x1005 = halt: fine
        ])
        assert result.status is RunStatus.HALTED


class TestCFI:
    def test_indirect_call_to_registered_target(self):
        machine = make_machine(MachineConfig(cfi=True))
        machine.indirect_targets = {0x1008}
        result = run_program(machine, [
            build.mov_ri(R1, 0x1008),
            build.call_reg(R1),
            build.nop(),
            build.halt(),               # 0x1008... careful below
        ])
        # layout: mov(6) call(2) nop(1) halt at 0x1009 -- retarget:
        assert result.status in (RunStatus.HALTED, RunStatus.FAULT)

    def test_indirect_call_to_unregistered_target_faults(self):
        machine = make_machine(MachineConfig(cfi=True))
        machine.indirect_targets = set()
        result = run_program(machine, [
            build.mov_ri(R1, 0x1010), build.call_reg(R1),
        ])
        assert isinstance(result.fault, CFIFault)

    def test_indirect_jmp_checked_too(self):
        machine = make_machine(MachineConfig(cfi=True))
        machine.indirect_targets = set()
        result = run_program(machine, [
            build.mov_ri(R1, 0x1010), build.jmp_reg(R1),
        ])
        assert isinstance(result.fault, CFIFault)

    def test_direct_calls_unchecked(self):
        machine = make_machine(MachineConfig(cfi=True))
        machine.indirect_targets = set()
        result = run_program(machine, [
            build.call_abs(0x1006), build.halt(), build.ret(),
        ])
        assert result.status is RunStatus.HALTED


class TestRedZones:
    def test_poisoned_access_faults(self):
        machine = make_machine(MachineConfig(redzones=True))
        machine.poison(0x00200100, 8)
        result = run_program(machine, [
            build.mov_ri(R1, 0x00200104), build.load(R0, Mem(R1, 0)),
        ])
        assert isinstance(result.fault, RedZoneFault)

    def test_unpoison_clears(self):
        machine = make_machine(MachineConfig(redzones=True))
        machine.poison(0x00200100, 8)
        machine.unpoison(0x00200100, 8)
        result = run_program(machine, [
            build.mov_ri(R1, 0x00200100), build.load(R0, Mem(R1, 0)),
            build.halt(),
        ])
        assert result.status is RunStatus.HALTED

    def test_redzones_ignored_when_disabled(self):
        machine = make_machine(MachineConfig(redzones=False))
        machine.poison(0x00200100, 8)
        result = run_program(machine, [
            build.mov_ri(R1, 0x00200100), build.load(R0, Mem(R1, 0)),
            build.halt(),
        ])
        assert result.status is RunStatus.HALTED

    def test_poison_syscalls(self):
        machine = make_machine(MachineConfig(redzones=True))
        result = run_program(machine, [
            build.mov_ri(R0, 0x00200200), build.mov_ri(R1, 4),
            build.sys(syscalls.SYS_POISON),
            build.mov_ri(R1, 0x00200200), build.load(R2, Mem(R1, 0)),
        ])
        assert isinstance(result.fault, RedZoneFault)
