"""Tests for the heap substrate and heap attacks."""

import pytest

from repro.attacks.heap import (
    attack_heap_double_free,
    attack_heap_overflow,
    attack_heap_uaf,
    build_heap_program,
)
from repro.attacks.base import Outcome
from repro.machine import RunStatus
from repro.mitigations import MitigationConfig, NONE
from repro.programs import heap as heap_sources

PROTO = heap_sources.HEAP_PROTOTYPES


def run_heap(body: str, stdin: bytes = b"", checked: bool = False):
    program = build_heap_program(PROTO + body, checked_allocator=checked)
    program.feed(stdin)
    return program.run()


class TestAllocator:
    @pytest.mark.parametrize("checked", [False, True], ids=["plain", "checked"])
    def test_basic_alloc_and_use(self, checked):
        result = run_heap("""
void main() {
    int *a = malloc(8);
    a[0] = 11;
    a[1] = 31;
    print_int(a[0] + a[1]);
}
""", checked=checked)
        assert result.status is RunStatus.EXITED
        assert result.output == b"42\n"

    @pytest.mark.parametrize("checked", [False, True], ids=["plain", "checked"])
    def test_allocations_disjoint(self, checked):
        result = run_heap("""
void main() {
    int *a = malloc(16);
    int *b = malloc(16);
    int i;
    for (i = 0; i < 4; i = i + 1) { a[i] = 1; }
    for (i = 0; i < 4; i = i + 1) { b[i] = 2; }
    int total = 0;
    for (i = 0; i < 4; i = i + 1) { total = total + a[i] + b[i]; }
    print_int(total);
}
""", checked=checked)
        assert result.output == b"12\n"

    def test_free_reuses_chunk(self):
        result = run_heap("""
void main() {
    int *a = malloc(8);
    free_ptr(a);
    int *b = malloc(8);
    print_int(a == b);
}
""")
        assert result.output == b"1\n"

    def test_quarantine_delays_reuse(self):
        result = run_heap("""
void main() {
    int *a = malloc(8);
    free_ptr(a);
    int *b = malloc(8);
    print_int(a == b);
}
""", checked=True)
        assert result.output == b"0\n"

    def test_exhaustion_returns_null(self):
        result = run_heap("""
void main() {
    int *p = malloc(4000);
    print_int(p == 0);
}
""")
        assert result.output == b"1\n"

    def test_free_words_accounting(self):
        result = run_heap("""
void main() {
    int before = heap_free_words();
    int *a = malloc(40);
    int during = heap_free_words();
    free_ptr(a);
    int after = heap_free_words();
    print_int(before - during);
    print_int(before - after);
}
""")
        lines = result.output.split()
        assert int(lines[0]) >= 10   # at least the payload went missing
        assert int(lines[1]) == 0    # coalescing restored everything

    def test_split_and_coalesce_roundtrip(self):
        result = run_heap("""
void main() {
    int *a = malloc(8);
    int *b = malloc(8);
    int *c = malloc(8);
    free_ptr(c);
    free_ptr(b);
    free_ptr(a);
    // after coalescing, a fresh big allocation must fit again
    int *big = malloc(1900);
    print_int(big != 0);
}
""")
        assert result.output == b"1\n"

    def test_many_small_allocations(self):
        result = run_heap("""
void main() {
    int count = 0;
    int *p = malloc(4);
    while (p != 0) {
        count = count + 1;
        p = malloc(4);
    }
    print_int(count);
}
""")
        count = int(result.output)
        # 510 payload words / 3 words per (1-word) chunk.
        assert 150 <= count <= 200


class TestHeapAttacks:
    def test_uaf_plain_exploited(self):
        assert attack_heap_uaf(NONE).succeeded

    def test_uaf_checked_detected(self):
        result = attack_heap_uaf(NONE, checked_allocator=True)
        assert result.outcome is Outcome.DETECTED

    def test_uaf_typed_cfi_detected(self):
        result = attack_heap_uaf(MitigationConfig(cfi_typed=True))
        assert result.outcome is Outcome.DETECTED

    def test_uaf_honest_path(self):
        program = build_heap_program(heap_sources.HEAP_UAF_VICTIM)
        program.feed(b"\x00" * 8)  # harmless fill: f = NULL -> crash, but
        result = program.run()     # no shell (the bug is still a bug)
        assert not result.shell_spawned

    def test_overflow_plain_exploited(self):
        assert attack_heap_overflow(NONE).succeeded

    def test_overflow_checked_detected(self):
        result = attack_heap_overflow(NONE, checked_allocator=True)
        assert result.outcome is Outcome.DETECTED

    def test_overflow_honest_input(self):
        program = build_heap_program(heap_sources.HEAP_OVERFLOW_VICTIM)
        from repro.attacks.payloads import p32

        program.feed(p32(8) + b"note....")
        assert program.run().output == b"0\n"

    def test_double_free_silent_in_plain(self):
        result = attack_heap_double_free(NONE)
        assert result.succeeded  # silently corrupts allocator state

    def test_double_free_detected_in_checked(self):
        result = attack_heap_double_free(NONE, checked_allocator=True)
        assert result.outcome is Outcome.DETECTED
        assert result.run.exit_code == 13

    def test_experiment_table_shape(self):
        from repro.experiments.heap_exp import heap_table

        rows = {row["attack"]: row for row in heap_table()}
        uaf = rows["use-after-free (dangling fn ptr)"]
        overflow = rows["heap overflow (adjacent chunk)"]
        assert uaf["plain"] == "success"
        assert uaf["checked allocator"] == "detected"
        assert uaf["typed cfi"] == "detected"
        assert overflow["plain"] == "success"
        assert overflow["typed cfi"] == "success"   # data-only: CFI blind
        assert overflow["checked allocator"] == "detected"
