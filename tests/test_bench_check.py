"""Unit tests for the benchmark regression gate (run_benchmarks --check)."""

from __future__ import annotations

import json

from benchmarks.run_benchmarks import (
    best_recorded_rate,
    check_regression,
    load_previous,
    write_tracking_file,
)


def entry(rate: float) -> dict:
    return {"interpreter": {"instructions_per_second": rate}}


class TestBestRecordedRate:
    def test_none_without_file(self):
        assert best_recorded_rate(None) is None

    def test_picks_best_across_history_and_current(self):
        previous = {
            "current": entry(500_000.0),
            "history": [entry(100_000.0), entry(650_000.0)],
        }
        assert best_recorded_rate(previous) == 650_000.0

    def test_skips_entries_without_interpreter_numbers(self):
        previous = {"current": {"compile_pipeline": {}},
                    "history": [entry(50_000.0)]}
        assert best_recorded_rate(previous) == 50_000.0


class TestCheckRegression:
    def test_passes_with_no_baseline(self):
        assert check_regression(100_000.0, None) is None

    def test_passes_with_no_rate(self):
        assert check_regression(None, 100_000.0) is None

    def test_passes_within_threshold(self):
        assert check_regression(91_000.0, 100_000.0) is None

    def test_fails_beyond_threshold(self):
        message = check_regression(89_000.0, 100_000.0)
        assert message is not None
        assert "REGRESSION" in message
        assert "11.0%" in message

    def test_improvement_passes(self):
        assert check_regression(150_000.0, 100_000.0) is None

    def test_custom_threshold(self):
        assert check_regression(89_000.0, 100_000.0, threshold=0.2) is None
        assert check_regression(79_000.0, 100_000.0, threshold=0.2)


class TestBlockSection:
    """The block-translation leg is gated independently."""

    def test_block_rate_tracked_separately(self):
        previous = {
            "current": {"interpreter": {"instructions_per_second": 800_000.0},
                        "block": {"instructions_per_second": 3_000_000.0}},
            "history": [entry(900_000.0)],
        }
        assert best_recorded_rate(previous) == 900_000.0
        assert best_recorded_rate(previous, "block") == 3_000_000.0

    def test_no_block_baseline_in_old_history(self):
        # Tracking files written before the block cache existed have
        # interpreter-only entries; the block gate must pass then.
        previous = {"current": entry(800_000.0), "history": [entry(700_000.0)]}
        assert best_recorded_rate(previous, "block") is None
        assert check_regression(3_000_000.0, None, section="block") is None

    def test_message_names_the_section(self):
        message = check_regression(1_000_000.0, 3_000_000.0, section="block")
        assert message is not None
        assert "block throughput" in message


class TestFuzzSection:
    """The greybox execs/sec section is gated like the others."""

    def test_fuzz_rate_tracked_separately(self):
        previous = {
            "current": {"interpreter": {"instructions_per_second": 800_000.0},
                        "fuzz": {"execs_per_second": 4_000.0}},
            "history": [],
        }
        assert best_recorded_rate(previous, "fuzz") == 4_000.0

    def test_no_fuzz_baseline_in_old_history(self):
        previous = {"current": entry(800_000.0), "history": []}
        assert best_recorded_rate(previous, "fuzz") is None
        assert check_regression(4_000.0, None, section="fuzz") is None

    def test_message_uses_execs_unit(self):
        message = check_regression(1_000.0, 4_000.0, section="fuzz")
        assert message is not None
        assert "fuzz throughput" in message
        assert "execs/s" in message


class TestTrackingFile:
    def test_round_trip_appends_history(self, tmp_path):
        path = str(tmp_path / "bench.json")
        write_tracking_file(path, entry(1.0))
        write_tracking_file(path, entry(2.0))
        data = load_previous(path)
        assert data["current"] == entry(2.0)
        assert data["history"] == [entry(1.0)]

    def test_load_previous_handles_corruption(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text("{not json")
        assert load_previous(str(path)) is None

    def test_gate_against_written_file(self, tmp_path):
        path = str(tmp_path / "bench.json")
        write_tracking_file(path, entry(666_000.0))
        previous = load_previous(path)
        baseline = best_recorded_rate(previous)
        assert check_regression(640_000.0, baseline) is None
        assert check_regression(500_000.0, baseline) is not None

    def test_written_file_is_valid_json(self, tmp_path):
        path = str(tmp_path / "bench.json")
        write_tracking_file(path, entry(3.0))
        with open(path) as fh:
            assert json.load(fh)["current"] == entry(3.0)
