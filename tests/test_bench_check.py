"""Unit tests for the benchmark regression gate (run_benchmarks --check)."""

from __future__ import annotations

import json

from benchmarks.run_benchmarks import (
    BASELINE_WINDOW,
    MAX_MONITOR_OVERHEAD,
    MIN_FUZZ_DISPATCH_SPEEDUP,
    MIN_PARALLEL_SCALING,
    MIN_SCALING_CORES,
    MIN_TRACE_SPEEDUP,
    baseline_rate,
    check_regression,
    load_previous,
    render_trajectory,
    write_tracking_file,
)


def entry(rate: float, timestamp: str = "?") -> dict:
    made = {"interpreter": {"instructions_per_second": rate}}
    if timestamp != "?":
        made["timestamp"] = timestamp
    return made


class TestBaselineRate:
    def test_none_without_file(self):
        assert baseline_rate(None) == (None, [])

    def test_median_across_history_and_current(self):
        previous = {
            "current": entry(500_000.0),
            "history": [entry(100_000.0), entry(650_000.0)],
        }
        baseline, used = baseline_rate(previous)
        assert baseline == 500_000.0
        assert len(used) == 3

    def test_skips_entries_without_interpreter_numbers(self):
        previous = {"current": {"compile_pipeline": {}},
                    "history": [entry(50_000.0)]}
        baseline, used = baseline_rate(previous)
        assert baseline == 50_000.0
        assert len(used) == 1

    def test_window_drops_old_entries(self):
        # One ancient lucky run must not set the floor forever: only
        # the last BASELINE_WINDOW entries feed the median.
        history = [entry(9_999_999.0)] + [entry(100_000.0)] * BASELINE_WINDOW
        previous = {"current": None, "history": history}
        baseline, used = baseline_rate(previous)
        assert baseline == 100_000.0
        assert len(used) == BASELINE_WINDOW

    def test_median_resists_one_outlier_inside_window(self):
        previous = {
            "current": entry(100_000.0),
            "history": [entry(98_000.0), entry(9_999_999.0),
                        entry(102_000.0)],
        }
        baseline, _ = baseline_rate(previous)
        assert baseline == 101_000.0

    def test_used_entries_carry_timestamps(self):
        previous = {"current": entry(2.0, "2026-01-02"),
                    "history": [entry(1.0, "2026-01-01")]}
        _, used = baseline_rate(previous)
        assert [item["timestamp"] for item in used] == [
            "2026-01-01", "2026-01-02"]
        assert [item["rate"] for item in used] == [1.0, 2.0]


class TestCheckRegression:
    def test_passes_with_no_baseline(self):
        assert check_regression(100_000.0, None) is None

    def test_passes_with_no_rate(self):
        assert check_regression(None, 100_000.0) is None

    def test_passes_within_threshold(self):
        assert check_regression(91_000.0, 100_000.0) is None

    def test_fails_beyond_threshold(self):
        message = check_regression(89_000.0, 100_000.0)
        assert message is not None
        assert "REGRESSION" in message
        assert "11.0%" in message

    def test_improvement_passes(self):
        assert check_regression(150_000.0, 100_000.0) is None

    def test_custom_threshold(self):
        assert check_regression(89_000.0, 100_000.0, threshold=0.2) is None
        assert check_regression(79_000.0, 100_000.0, threshold=0.2)


class TestBlockSection:
    """The block-translation leg is gated independently."""

    def test_block_rate_tracked_separately(self):
        previous = {
            "current": {"interpreter": {"instructions_per_second": 800_000.0},
                        "block": {"instructions_per_second": 3_000_000.0}},
            "history": [entry(900_000.0)],
        }
        assert baseline_rate(previous)[0] == 850_000.0
        assert baseline_rate(previous, "block")[0] == 3_000_000.0

    def test_no_block_baseline_in_old_history(self):
        # Tracking files written before the block cache existed have
        # interpreter-only entries; the block gate must pass then.
        previous = {"current": entry(800_000.0), "history": [entry(700_000.0)]}
        assert baseline_rate(previous, "block") == (None, [])
        assert check_regression(3_000_000.0, None, section="block") is None

    def test_message_names_the_section(self):
        message = check_regression(1_000_000.0, 3_000_000.0, section="block")
        assert message is not None
        assert "block throughput" in message


class TestTraceSection:
    """The trace-JIT leg is gated like the others, plus a speedup floor."""

    def trace_entry(self, rate: float) -> dict:
        return {"trace": {"instructions_per_second": rate,
                          "speedup_vs_block": 2.6}}

    def test_trace_rate_tracked_separately(self):
        previous = {"current": self.trace_entry(10_000_000.0), "history": []}
        assert baseline_rate(previous, "trace")[0] == 10_000_000.0

    def test_no_trace_baseline_in_old_history(self):
        # Entries written before the trace tier existed must not trip
        # the gate on the first traced run.
        previous = {"current": entry(800_000.0), "history": []}
        assert baseline_rate(previous, "trace") == (None, [])
        assert check_regression(10_000_000.0, None, section="trace") is None

    def test_speedup_floor_is_meaningful(self):
        # The gate's reason to exist: a trace tier slower than 2.5x
        # block dispatch is a regression even if insns/s held steady.
        assert MIN_TRACE_SPEEDUP >= 2.5


class TestMonitoredSection:
    """The invariant-monitored leg is gated like the others, plus an
    overhead ceiling vs the detached block leg."""

    def test_monitored_rate_tracked_separately(self):
        previous = {
            "current": {
                "block": {"instructions_per_second": 3_000_000.0},
                "monitored": {"instructions_per_second": 2_000_000.0,
                              "overhead_vs_block": 1.5},
            },
            "history": [],
        }
        assert baseline_rate(previous, "monitored")[0] == 2_000_000.0

    def test_no_monitored_baseline_in_old_history(self):
        # Tracking files written before the invariant monitor existed
        # must not trip the gate on the first monitored run.
        previous = {"current": entry(800_000.0), "history": []}
        assert baseline_rate(previous, "monitored") == (None, [])
        assert check_regression(2_000_000.0, None,
                                section="monitored") is None

    def test_overhead_ceiling_is_meaningful(self):
        # Always-on monitoring is only credible if it stays cheap:
        # the ceiling must bound the monitored leg within a small
        # factor of undisturbed block dispatch.
        assert MAX_MONITOR_OVERHEAD <= 3.0

    def test_message_names_the_section(self):
        message = check_regression(500_000.0, 2_000_000.0,
                                   section="monitored")
        assert message is not None
        assert "monitored throughput" in message


class TestFuzzSection:
    """The greybox execs/sec section is gated like the others."""

    def test_fuzz_rate_tracked_separately(self):
        previous = {
            "current": {"interpreter": {"instructions_per_second": 800_000.0},
                        "fuzz": {"execs_per_second": 4_000.0}},
            "history": [],
        }
        assert baseline_rate(previous, "fuzz")[0] == 4_000.0

    def test_no_fuzz_baseline_in_old_history(self):
        previous = {"current": entry(800_000.0), "history": []}
        assert baseline_rate(previous, "fuzz") == (None, [])
        assert check_regression(4_000.0, None, section="fuzz") is None

    def test_message_uses_execs_unit(self):
        message = check_regression(1_000.0, 4_000.0, section="fuzz")
        assert message is not None
        assert "fuzz throughput" in message
        assert "execs/s" in message


class TestParallelFuzzSection:
    """The parallel campaign leg: its own baseline plus the gates
    introduced with the throughput overhaul."""

    def test_parallel_rate_tracked_separately(self):
        previous = {
            "current": {
                "fuzz_campaign": {"execs_per_second": 1_000.0},
                "fuzz_parallel": {"execs_per_second": 3_400.0,
                                  "scaling_vs_sequential": 3.4,
                                  "jobs": 4, "cores": 8},
            },
            "history": [],
        }
        assert baseline_rate(previous, "fuzz_parallel")[0] == 3_400.0
        assert baseline_rate(previous, "fuzz_campaign")[0] == 1_000.0

    def test_no_parallel_baseline_in_old_history(self):
        # Tracking files written before the parallel overhaul must not
        # trip the gate on the first fanned-out run.
        previous = {"current": entry(800_000.0), "history": []}
        assert baseline_rate(previous, "fuzz_parallel") == (None, [])
        assert check_regression(3_400.0, None,
                                section="fuzz_parallel") is None

    def test_message_uses_execs_unit(self):
        message = check_regression(1_000.0, 4_000.0,
                                   section="fuzz_parallel")
        assert message is not None
        assert "fuzz_parallel throughput" in message
        assert "execs/s" in message

    def test_gate_floors_are_meaningful(self):
        # The ISSUE's acceptance bars: transparent dispatch must at
        # least double observed execs/s, and four workers must earn at
        # least a 3x campaign -- on hardware that can express it.
        assert MIN_FUZZ_DISPATCH_SPEEDUP >= 2.0
        assert MIN_PARALLEL_SCALING >= 3.0
        assert MIN_SCALING_CORES == 4


class TestTrajectory:
    def runs(self):
        return {
            "current": {
                "timestamp": "2026-08-08",
                "interpreter": {"instructions_per_second": 1_200_000.0},
                "fuzz": {"execs_per_second": 9_000.0},
            },
            "history": [
                {"timestamp": "2026-08-01",
                 "interpreter": {"instructions_per_second": 1_000_000.0}},
                {"timestamp": "2026-08-04",
                 "interpreter": {"instructions_per_second": 1_100_000.0},
                 "fuzz": {"execs_per_second": 4_500.0}},
            ],
        }

    def test_sections_report_trend_and_rows(self):
        lines = render_trajectory(self.runs())
        text = "\n".join(lines)
        # The interpreter moved 1.0M -> 1.2M across three runs...
        assert "interpreter: 1,200,000 insns/s (+20.0% over 3 runs)" in text
        # ...and fuzz doubled across the two runs that carry it.
        assert "fuzz: 9,000 execs/s (+100.0% over 2 runs)" in text
        assert "2026-08-01" in text and "2026-08-08" in text

    def test_sections_without_history_are_skipped(self):
        lines = render_trajectory(self.runs())
        assert not any(line.startswith("fuzz_parallel") for line in lines)

    def test_single_run_has_no_percentage(self):
        previous = {"current": entry(500_000.0, "2026-08-08"),
                    "history": []}
        lines = render_trajectory(previous)
        assert lines[0] == "interpreter: 500,000 insns/s (1 run recorded)"

    def test_empty_file_says_so(self):
        assert render_trajectory(None) == ["no tracking file recorded yet"]
        assert render_trajectory({"current": {"compile_pipeline": {}},
                                  "history": []}) == [
            "no tracked sections recorded yet"]


class TestTrackingFile:
    def test_round_trip_appends_history(self, tmp_path):
        path = str(tmp_path / "bench.json")
        write_tracking_file(path, entry(1.0))
        write_tracking_file(path, entry(2.0))
        data = load_previous(path)
        assert data["current"] == entry(2.0)
        assert data["history"] == [entry(1.0)]

    def test_load_previous_handles_corruption(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text("{not json")
        assert load_previous(str(path)) is None

    def test_gate_against_written_file(self, tmp_path):
        path = str(tmp_path / "bench.json")
        write_tracking_file(path, entry(666_000.0))
        previous = load_previous(path)
        baseline, _ = baseline_rate(previous)
        assert check_regression(640_000.0, baseline) is None
        assert check_regression(500_000.0, baseline) is not None

    def test_written_file_is_valid_json(self, tmp_path):
        path = str(tmp_path / "bench.json")
        write_tracking_file(path, entry(3.0))
        with open(path) as fh:
            assert json.load(fh)["current"] == entry(3.0)
