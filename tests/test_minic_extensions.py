"""Tests for the MinC language extensions: ++/--, compound assignment,
the ternary operator, do-while -- including compiling the paper's
Figure 2 code verbatim."""

import pytest

from repro.errors import CompileError
from repro.machine import RunStatus
from repro.minic import compile_to_asm, parse
from repro.minic.sema import analyze
from tests.conftest import run_c


def outputs(source: str, stdin: bytes = b"") -> list[int]:
    result = run_c(source, stdin)
    assert result.status is RunStatus.EXITED, (result.status, result.fault)
    return [int(line) for line in result.output.split()]


class TestIncrementDecrement:
    def test_postfix_returns_old_value(self):
        assert outputs("""
void main() {
    int x = 5;
    print_int(x++);
    print_int(x);
}
""") == [5, 6]

    def test_prefix_returns_new_value(self):
        assert outputs("""
void main() {
    int x = 5;
    print_int(++x);
    print_int(--x);
}
""") == [6, 5]

    def test_postfix_on_global(self):
        assert outputs("""
static int counter = 10;
void main() {
    counter--;
    counter--;
    print_int(counter);
}
""") == [8]

    def test_postfix_on_array_element(self):
        assert outputs("""
void main() {
    int a[2];
    a[1] = 7;
    print_int(a[1]++);
    print_int(a[1]);
}
""") == [7, 8]

    def test_pointer_increment_scales(self):
        assert outputs("""
void main() {
    int a[3];
    a[0] = 1; a[1] = 2; a[2] = 3;
    int *p = a;
    p++;
    print_int(*p);
    print_int(*p++);
    print_int(*p);
}
""") == [2, 2, 3]

    def test_char_increment_wraps_byte(self):
        assert outputs("""
void main() {
    char c;
    c = 255;
    c++;
    print_int(c);
}
""") == [0]

    def test_needs_lvalue(self):
        with pytest.raises(CompileError, match="lvalue"):
            analyze(parse("void main() { 5++; }"))

    def test_loop_idiom(self):
        assert outputs("""
void main() {
    int total = 0;
    int i;
    for (i = 0; i < 5; i++) { total += i; }
    print_int(total);
}
""") == [10]


class TestCompoundAssignment:
    @pytest.mark.parametrize("op,expected", [
        ("x += 3", 13), ("x -= 3", 7), ("x *= 3", 30),
        ("x /= 3", 3), ("x %= 3", 1),
    ])
    def test_operators(self, op, expected):
        assert outputs(f"""
void main() {{
    int x = 10;
    {op};
    print_int(x);
}}
""") == [expected]

    def test_result_is_expression(self):
        assert outputs("""
void main() {
    int x = 1;
    print_int(x += 4);
}
""") == [5]

    def test_on_array_element(self):
        assert outputs("""
void main() {
    int a[2];
    a[0] = 3;
    a[0] += 4;
    print_int(a[0]);
}
""") == [7]


class TestTernary:
    def test_both_branches(self):
        assert outputs("""
int pick(int c) { return c ? 10 : 20; }
void main() {
    print_int(pick(1));
    print_int(pick(0));
}
""") == [10, 20]

    def test_only_taken_branch_evaluates(self):
        assert outputs("""
int boom() { exit(9); return 0; }
void main() {
    print_int(1 ? 7 : boom());
    print_int(0 ? boom() : 8);
}
""") == [7, 8]

    def test_nesting(self):
        assert outputs("""
int sign(int x) { return x < 0 ? -1 : (x == 0 ? 0 : 1); }
void main() {
    print_int(sign(-9));
    print_int(sign(0));
    print_int(sign(9));
}
""") == [-1, 0, 1]

    def test_incompatible_branches_rejected(self):
        with pytest.raises(CompileError, match="incompatible"):
            analyze(parse("""
void nothing() { }
void main() { int x = 1 ? 1 : nothing(); }
"""))


class TestDoWhile:
    def test_body_runs_at_least_once(self):
        assert outputs("""
void main() {
    int i = 10;
    int runs = 0;
    do { runs++; } while (i < 5);
    print_int(runs);
}
""") == [1]

    def test_loops_until_false(self):
        assert outputs("""
void main() {
    int i = 0;
    do { i++; } while (i < 7);
    print_int(i);
}
""") == [7]

    def test_break_and_continue(self):
        assert outputs("""
void main() {
    int i = 0;
    int total = 0;
    do {
        i++;
        if (i % 2 == 0) continue;
        if (i > 9) break;
        total += i;
    } while (1);
    print_int(total);
}
""") == [1 + 3 + 5 + 7 + 9]


class TestPaperVerbatim:
    def test_figure2_compiles_verbatim(self):
        """The exact code of the paper's Figure 2 (including the
        ``tries_left--``) compiles and behaves as described."""
        from repro.programs.sources import SECRET_MODULE_FIG2

        assert "tries_left-- ;" in SECRET_MODULE_FIG2  # really verbatim
        compile_to_asm(SECRET_MODULE_FIG2, "secret")

    def test_figure2_lockout_semantics(self):
        from repro.attacks.payloads import p32
        from repro.programs import build_secret_program

        program = build_secret_program()
        program.feed(p32(5) + p32(1) + p32(2) + p32(3) + p32(1234) + p32(1234))
        result = program.run()
        # Three strikes, then even the right PIN is refused.
        assert [int(x) for x in result.output.split()] == [0, 0, 0, 0, 0]
