"""End-to-end MinC semantics: compile, run, check observable behaviour."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine import RunStatus
from tests.conftest import run_c


def outputs(source: str, stdin: bytes = b"") -> list[int]:
    result = run_c(source, stdin)
    assert result.status is RunStatus.EXITED, (result.status, result.fault)
    return [int(line) for line in result.output.split()]


def expr_value(expression: str, preamble: str = "") -> int:
    source = f"{preamble}\nvoid main() {{ print_int({expression}); }}"
    return outputs(source)[0]


class TestExpressions:
    @pytest.mark.parametrize("expression,expected", [
        ("1 + 2 * 3", 7),
        ("(1 + 2) * 3", 9),
        ("10 - 3 - 2", 5),
        ("7 / 2", 3),
        ("-7 / 2", -3),       # C truncation toward zero
        ("7 % 3", 1),
        ("-7 % 3", -1),       # sign follows the dividend
        ("1 << 4", 16),
        ("256 >> 4", 16),
        ("0xF0 & 0x3C", 0x30),
        ("0xF0 | 0x0F", 0xFF),
        ("0xFF ^ 0x0F", 0xF0),
        ("~0", -1),
        ("-(5)", -5),
        ("!0", 1),
        ("!7", 0),
        ("1 < 2", 1),
        ("2 < 1", 0),
        ("2 <= 2", 1),
        ("3 > 2", 1),
        ("3 >= 4", 0),
        ("5 == 5", 1),
        ("5 != 5", 0),
        ("-1 < 0", 1),          # signed comparison
        ("1 && 2", 1),
        ("1 && 0", 0),
        ("0 || 3", 1),
        ("0 || 0", 0),
        ("'A'", 65),
    ])
    def test_constant_expressions(self, expression, expected):
        assert expr_value(expression) == expected

    def test_wraparound_arithmetic(self):
        assert expr_value("2147483647 + 1") == -2147483648

    def test_short_circuit_and(self):
        # boom() would exit(9); && must not evaluate it.
        assert outputs("""
int boom() { exit(9); return 0; }
void main() { print_int(0 && boom()); print_int(1); }
""") == [0, 1]

    def test_short_circuit_or(self):
        assert outputs("""
int boom() { exit(9); return 0; }
void main() { print_int(1 || boom()); print_int(1); }
""") == [1, 1]

    def test_assignment_is_expression(self):
        assert outputs("""
void main() {
    int a;
    int b;
    a = b = 21;
    print_int(a + b);
}
""") == [42]

    @settings(max_examples=60, deadline=None)
    @given(st.integers(-1000, 1000), st.integers(-1000, 1000),
           st.sampled_from(["+", "-", "*"]))
    def test_arithmetic_matches_python(self, a, b, op):
        expected = {"+": a + b, "-": a - b, "*": a * b}[op]
        assert expr_value(f"({a}) {op} ({b})") == expected

    @settings(max_examples=40, deadline=None)
    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_comparisons_match_python(self, a, b):
        assert expr_value(f"({a}) < ({b})") == int(a < b)
        assert expr_value(f"({a}) == ({b})") == int(a == b)


class TestControlFlow:
    def test_if_else_chain(self):
        source = """
int classify(int x) {
    if (x < 0) return -1;
    else if (x == 0) return 0;
    else return 1;
}
void main() {
    print_int(classify(-5));
    print_int(classify(0));
    print_int(classify(9));
}
"""
        assert outputs(source) == [-1, 0, 1]

    def test_while_loop(self):
        assert outputs("""
void main() {
    int total = 0;
    int i = 1;
    while (i <= 10) { total = total + i; i = i + 1; }
    print_int(total);
}
""") == [55]

    def test_for_loop_with_break_continue(self):
        assert outputs("""
void main() {
    int total = 0;
    int i;
    for (i = 0; i < 100; i = i + 1) {
        if (i % 2 == 0) continue;
        if (i > 10) break;
        total = total + i;
    }
    print_int(total);
}
""") == [1 + 3 + 5 + 7 + 9]

    def test_nested_loops(self):
        assert outputs("""
void main() {
    int count = 0;
    int i;
    for (i = 0; i < 4; i = i + 1) {
        int j;
        for (j = 0; j < i; j = j + 1) {
            count = count + 1;
        }
    }
    print_int(count);
}
""") == [6]

    def test_recursion(self):
        assert outputs("""
int fact(int n) {
    if (n <= 1) return 1;
    return n * fact(n - 1);
}
void main() { print_int(fact(7)); }
""") == [5040]

    def test_mutual_recursion(self):
        assert outputs("""
int is_odd(int n);
int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
void main() { print_int(is_even(10)); print_int(is_odd(10)); }
""") == [1, 0]


class TestDataAndPointers:
    def test_global_init_and_update(self):
        assert outputs("""
static int counter = 5;
void bump() { counter = counter + 1; }
void main() { bump(); bump(); print_int(counter); }
""") == [7]

    def test_global_array_initialiser(self):
        assert outputs("""
int table[] = {10, 20, 30};
void main() { print_int(table[0] + table[1] + table[2]); }
""") == [60]

    def test_local_array_roundtrip(self):
        assert outputs("""
void main() {
    int squares[8];
    int i;
    for (i = 0; i < 8; i = i + 1) { squares[i] = i * i; }
    int total = 0;
    for (i = 0; i < 8; i = i + 1) { total = total + squares[i]; }
    print_int(total);
}
""") == [sum(i * i for i in range(8))]

    def test_char_array_and_bytes(self):
        result = run_c("""
void main() {
    char buf[4];
    buf[0] = 'o';
    buf[1] = 'k';
    buf[2] = '!';
    buf[3] = 10;
    write(1, buf, 4);
}
""")
        assert result.output == b"ok!\n"

    def test_char_truncation(self):
        assert outputs("""
void main() {
    char c;
    c = 300;
    print_int(c);
}
""") == [300 & 0xFF]

    def test_pointer_deref_and_write(self):
        assert outputs("""
void main() {
    int x = 1;
    int *p = &x;
    *p = 99;
    print_int(x);
    print_int(*p);
}
""") == [99, 99]

    def test_pointer_arithmetic_scales(self):
        assert outputs("""
void main() {
    int arr[4];
    arr[0] = 10; arr[1] = 20; arr[2] = 30; arr[3] = 40;
    int *p = arr;
    print_int(*(p + 2));
    print_int(*(2 + p));
}
""") == [30, 30]

    def test_char_pointer_arithmetic_unscaled(self):
        result = run_c("""
void main() {
    char s[4];
    s[0] = 'a'; s[1] = 'b'; s[2] = 'c'; s[3] = 0;
    char *p = s;
    write(1, p + 1, 2);
}
""")
        assert result.output == b"bc"

    def test_string_literal(self):
        result = run_c("""
void main() {
    write(1, "hello", 5);
}
""")
        assert result.output == b"hello"

    def test_pass_array_to_function(self):
        assert outputs("""
int total(int arr[], int n) {
    int acc = 0;
    int i;
    for (i = 0; i < n; i = i + 1) { acc = acc + arr[i]; }
    return acc;
}
void main() {
    int values[3];
    values[0] = 7; values[1] = 8; values[2] = 9;
    print_int(total(values, 3));
}
""") == [24]

    def test_out_param_via_pointer(self):
        assert outputs("""
void put(int *slot, int value) { *slot = value; }
void main() {
    int x = 0;
    put(&x, 123);
    print_int(x);
}
""") == [123]


class TestFunctionPointers:
    def test_direct_assignment_and_call(self):
        assert outputs("""
int twice(int x) { return 2 * x; }
int thrice(int x) { return 3 * x; }
void main() {
    int (*f)(int);
    f = twice;
    print_int(f(10));
    f = &thrice;
    print_int(f(10));
}
""") == [20, 30]

    def test_callback_parameter(self):
        assert outputs("""
int add(int a, int b) { return a + b; }
int fold(int (*op)(int, int), int seed, int n) {
    int i;
    for (i = 1; i <= n; i = i + 1) { seed = op(seed, i); }
    return seed;
}
void main() { print_int(fold(&add, 0, 5)); }
""") == [15]

    def test_funcptr_in_global(self):
        assert outputs("""
int one() { return 1; }
static int (*handler)();
void main() {
    handler = one;
    print_int(handler());
}
""") == [1]


class TestIO:
    def test_read_echo(self):
        result = run_c("""
void main() {
    char buf[8];
    int n = read(0, buf, 8);
    write(1, buf, n);
}
""", stdin=b"ping")
        assert result.output == b"ping"

    def test_exit_code(self):
        result = run_c("void main() { exit(3); }")
        assert result.exit_code == 3

    def test_main_fallthrough_exits_zero(self):
        result = run_c("void main() { }")
        assert result.exit_code == 0

    def test_main_return_value(self):
        result = run_c("int main() { return 12; }")
        assert result.exit_code == 12
