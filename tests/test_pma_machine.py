"""Machine-level PMA integration: the access rules enforced on real
executing code (assembly-built scenarios, complementing the
controller-level tests in test_pma.py)."""

import pytest

from repro.asm import assemble
from repro.errors import ProtectionFault, SyscallFault
from repro.link import load
from repro.machine import RunStatus

#: A module exposing one entry point; data holds a secret word.
MODULE_ASM = """
.text
.entry api
api:
    mov r1, secret_cell
    load r0, [r1]
    ret
inner:
    mov r0, 0x1234
    ret
.data
secret_cell: .word 0xS3C
"""


def make_module(secret=0x53C):
    return assemble(MODULE_ASM.replace("0xS3C", hex(secret)), "mod")


def build(main_source: str, secret=0x53C):
    return load([assemble(main_source, "main"), make_module(secret)])


class TestEntryDiscipline:
    def test_call_through_entry_works(self):
        program = build("""
.text
.global main
main:
    call api
    sys 3
""")
        result = program.run()
        assert result.exit_code == 0x53C

    def test_call_to_internal_label_faults(self):
        # `inner` is module-local, so the attacker addresses it
        # numerically (they have the binary).
        study = build(".text\n.global main\nmain: sys 3\n")
        inner = study.image.symbols["mod:inner"]
        program = load([assemble(f"""
.text
.global main
main:
    mov r1, 0x{inner:x}
    call r1
    sys 3
""", "main"), make_module()])
        result = program.run()
        assert isinstance(result.fault, ProtectionFault)

    def test_jump_into_entry_is_allowed(self):
        # Tail-calling the entry point is fine; the module's ret then
        # returns to main's caller (crt0), exiting with the secret.
        program = build("""
.text
.global main
main:
    jmp api
""")
        result = program.run()
        assert result.exit_code == 0x53C

    def test_fallthrough_into_module_faults(self):
        """Execution sliding off the end of outside code into the
        module's first byte is an entry -- only legal at entry points.
        Here we jump just before the module and single-step into it."""
        program = build("""
.text
.global main
main:
    mov r1, api
    add r1, 2          ; one instruction past the entry
    jmp r1
""")
        result = program.run()
        assert isinstance(result.fault, ProtectionFault)


class TestDataDiscipline:
    def test_outside_read_by_address_faults(self):
        program = build("""
.text
.global main
main:
    call api            ; learn nothing; just proves the program works
    sys 3
""")
        data_lo, data_hi = program.image.object_layout["mod"][".data"]
        hostile = load([assemble(f"""
.text
.global main
main:
    mov r1, 0x{data_lo:x}
    load r0, [r1]
    sys 3
""", "main"), make_module()])
        result = hostile.run()
        assert isinstance(result.fault, ProtectionFault)

    def test_outside_write_by_address_faults(self):
        program = build(".text\n.global main\nmain: sys 3\n")
        data_lo, _ = program.image.object_layout["mod"][".data"]
        hostile = load([assemble(f"""
.text
.global main
main:
    mov r1, 0x{data_lo:x}
    mov r0, 0x666
    store [r1], r0
    sys 3
""", "main"), make_module()])
        result = hostile.run()
        assert isinstance(result.fault, ProtectionFault)

    def test_module_cannot_overwrite_own_code(self):
        module = assemble("""
.text
.entry selfpatch
selfpatch:
    mov r1, selfpatch
    mov r0, 0x25
    storeb [r1], r0      ; try to patch own first byte
    ret
.data
pad: .word 0
""", "mod")
        program = load([assemble(
            ".text\n.global main\nmain: call selfpatch\nsys 3\n", "main"),
            module])
        result = program.run()
        assert isinstance(result.fault, ProtectionFault)
        assert "code section" in str(result.fault)

    def test_module_may_write_outside_memory(self):
        module = assemble("""
.text
.entry export
export:
    load r2, [sp+4]      ; caller-provided out pointer (its stack)
    mov r0, 0x777
    store [r2], r0
    ret
.data
pad: .word 0
""", "mod")
        program = load([assemble("""
.text
.global main
main:
    sub sp, 4
    mov r1, sp
    push r1
    call export
    add sp, 4
    pop r0               ; the module wrote through our pointer
    sys 3
""", "main"), module])
        result = program.run()
        assert result.exit_code == 0x777


class TestHardwareServicesOnMachine:
    def test_attest_from_inside_module(self):
        module = assemble("""
.text
.entry do_attest
do_attest:
    mov r0, nonce
    mov r1, 8
    mov r2, report
    sys 7
    mov r0, report
    ret
.data
nonce:  .ascii "12345678"
report: .space 32
""", "mod")
        program = load([assemble("""
.text
.global main
main:
    call do_attest       ; r0 = &report (module data!)
    mov r0, 0
    sys 3
""", "main"), module])
        result = program.run()
        assert result.status is RunStatus.EXITED
        # The report was produced with the module's derived key.
        module_obj = program.machine.pma.modules[0]
        report_addr = program.image.symbols["mod:report"]
        report = program.machine.memory.read_bytes(report_addr, 32)
        from repro.pma import crypto
        expected = crypto.mac(module_obj.module_key, b"attest" + b"12345678")
        assert report == expected

    def test_attest_from_outside_faults(self):
        program = build("""
.text
.global main
main:
    mov r0, 0
    mov r1, 0
    mov r2, 0
    sys 7
    sys 3
""")
        result = program.run()
        assert isinstance(result.fault, SyscallFault)

    def test_counter_persists_within_platform(self):
        module = assemble("""
.text
.entry bump
bump:
    sys 11               ; ctr_incr -> r0
    ret
.data
pad: .word 0
""", "mod")
        main = assemble("""
.text
.global main
main:
    call bump
    call bump
    call bump
    sys 3                ; exit with the final counter value
""", "main")
        program = load([main, module])
        assert program.run().exit_code == 3
