"""Shared test helpers: compile/assemble/run one-liners."""

from __future__ import annotations

import pytest

from repro.asm import assemble
from repro.link import LoadedProgram, load
from repro.machine import Machine, MachineConfig, RunResult
from repro.minic import CompileOptions, compile_source
from repro.mitigations import MitigationConfig, NONE


def asm_program(source: str, config: MitigationConfig = NONE,
                name: str = "test", **load_kwargs) -> LoadedProgram:
    """Assemble one module and load it (needs a global ``main``)."""
    return load([assemble(source, name)], config, **load_kwargs)


def run_asm(source: str, stdin: bytes = b"", config: MitigationConfig = NONE,
            **load_kwargs) -> RunResult:
    """Assemble, load, feed input, run."""
    program = asm_program(source, config, **load_kwargs)
    program.feed(stdin)
    return program.run()


def c_program(source: str, config: MitigationConfig = NONE,
              options: CompileOptions | None = None, name: str = "test",
              **load_kwargs) -> LoadedProgram:
    """Compile one MinC module and load it."""
    if options is None:
        from repro.minic.compiler import options_from_mitigations

        options = options_from_mitigations(config)
    return load([compile_source(source, name, options)], config, **load_kwargs)


def run_c(source: str, stdin: bytes = b"", config: MitigationConfig = NONE,
          options: CompileOptions | None = None, **load_kwargs) -> RunResult:
    """Compile, load, feed input, run."""
    program = c_program(source, config, options, **load_kwargs)
    program.feed(stdin)
    return program.run()


@pytest.fixture
def bare_machine() -> Machine:
    """A machine with one RWX page of code space and a stack."""
    machine = Machine(MachineConfig())
    # Everything RWX: the historical no-DEP platform.
    machine.memory.map_region(0x1000, 0x1000, 7)
    machine.memory.map_region(0x00200000, 0x10000, 7)
    machine.cpu.ip = 0x1000
    machine.cpu.sp = 0x0020F000
    return machine
