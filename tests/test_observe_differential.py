"""Differential testing: observers attached vs detached.

The observability layer must be a pure read-only tap: attaching every
observer at once (event trace with memory events, metrics, profiler,
instruction tracer) must leave the machine's observable behaviour --
status, exit code, fault, output, instruction count, shell spawning,
and the legacy instruction trace -- byte-identical to an unobserved
run.  The scenarios deliberately include the paper's adversarial
cases (the Fig. 1 exploit, a ROP chain, self-modifying code) where an
observer that perturbed state would be most likely to diverge.
"""

from __future__ import annotations

import pytest

from repro.isa import Mem, R0, R1, R2, R3, build, encode_many
from repro.machine import Machine, MachineConfig, RunResult
from repro.machine.memory import PERM_RWX
from repro.mitigations import DEP, NONE
from repro.observe import (
    EventTrace,
    GuestProfiler,
    InstructionTracer,
    MetricsCollector,
    observe_new_machines,
)
from tests.conftest import c_program
from tests.test_differential_cache import C_SCENARIOS, summarize


def everything():
    """One of each observer, including the memory-event heavy ones."""
    return [EventTrace(), MetricsCollector(), GuestProfiler(),
            InstructionTracer()]


def run_c_both_ways(source: str, stdin: bytes = b"") -> tuple:
    outcomes = []
    for observe in (False, True):
        program = c_program(source, trace=True)
        if observe:
            for observer in everything():
                program.machine.attach_observer(observer)
        program.feed(stdin)
        result = program.run()
        outcomes.append((summarize(result), program.machine.trace))
    return outcomes


class TestCompiledPrograms:
    @pytest.mark.parametrize("name", sorted(C_SCENARIOS))
    def test_observed_run_identical(self, name):
        (plain, plain_trace), (observed, observed_trace) = run_c_both_ways(
            C_SCENARIOS[name])
        assert observed == plain
        assert observed_trace == plain_trace


class TestAdversarialPrograms:
    def test_self_modifying_identical(self):
        loop, exit_at = 0x100C, 0x103A
        program = encode_many([
            build.mov_ri(R0, 0),
            build.mov_ri(R2, 0),
            build.add_ri(R0, 1),
            build.add_ri(R2, 1),
            build.cmp_ri(R2, 2),
            build.jz(exit_at),
            build.mov_ri(R1, loop),
            build.mov_ri(R3, 0x0002000B),
            build.store(R3, Mem(R1, 0)),
            build.jmp_abs(loop),
            build.sys(3),
        ])

        outcomes = []
        for observe in (False, True):
            machine = Machine(MachineConfig(trace=True))
            if observe:
                for observer in everything():
                    machine.attach_observer(observer)
            machine.memory.map_region(0x1000, 0x1000, PERM_RWX)
            machine.memory.map_region(0x00200000, 0x10000, PERM_RWX)
            machine.memory.write_bytes(0x1000, program)
            machine.cpu.ip = 0x1000
            machine.cpu.sp = 0x0020F000
            result = machine.run(max_instructions=10_000)
            outcomes.append((summarize(result), machine.trace))
        (plain, plain_trace), (observed, observed_trace) = outcomes
        assert observed == plain
        assert observed_trace == plain_trace
        assert plain[1] == 3  # both ran the patched bytes


def _attack_summary(result):
    return (
        result.outcome,
        result.detail,
        summarize(result.run) if result.run is not None else None,
    )


class TestAttackPipelines:
    """Whole attack pipelines agree with and without observers."""

    def test_fig1_injection_exploit_identical(self):
        from repro.attacks import attack_stack_smash_injection

        plain = _attack_summary(attack_stack_smash_injection(NONE))
        with observe_new_machines(lambda machine: EventTrace(),
                                  lambda machine: MetricsCollector()):
            observed = _attack_summary(attack_stack_smash_injection(NONE))
        assert observed == plain
        assert plain[2][6]  # the exploit spawns its shell either way

    def test_rop_chain_identical(self):
        from repro.attacks import attack_rop_shell

        plain = _attack_summary(attack_rop_shell(DEP))
        with observe_new_machines(lambda machine: EventTrace(),
                                  lambda machine: MetricsCollector()):
            observed = _attack_summary(attack_rop_shell(DEP))
        assert observed == plain

    def test_dep_blocks_injection_identically(self):
        from repro.attacks import attack_stack_smash_injection

        plain = _attack_summary(attack_stack_smash_injection(DEP))
        with observe_new_machines(lambda machine: EventTrace()):
            observed = _attack_summary(attack_stack_smash_injection(DEP))
        assert observed == plain


class TestTimingFieldExcluded:
    def test_summaries_ignore_wall_clock(self):
        """duration_seconds is wall-clock and legitimately differs
        between runs; everything the summaries compare must not."""
        fields = RunResult.__dataclass_fields__
        assert "duration_seconds" in fields
        compared = {"status", "exit_code", "fault", "instructions",
                    "output", "shell_spawned"}
        assert compared <= set(fields)
