"""Differential testing: decode cache on vs off.

The decoded-instruction cache is a pure performance layer; it must be
observationally invisible.  Each scenario here runs twice -- once with
the cache enabled and once with the legacy decode-every-step
interpreter -- and asserts the two runs produce identical results:
status, exit code, fault type, output, instruction count, shell
spawning, and (where traced) the full instruction trace.

The scenarios deliberately include the paper's adversarial cases: the
Fig. 1 stack-smash code-injection exploit, a ROP chain, self-modifying
code, and runtime code injection -- the workloads where a stale cache
would diverge.
"""

from __future__ import annotations

import pytest

from repro.isa import Mem, R0, R1, R2, R3, build, encode_many
from repro.machine import Machine, MachineConfig, RunResult
from repro.machine import machine as machine_module
from repro.machine.memory import PERM_RW, PERM_RWX
from repro.mitigations import DEP, NONE
from tests.conftest import c_program


@pytest.fixture
def uncached_default():
    """Flip the module-wide default so pipelines that build their own
    machines (the attack suites) run without the decode cache."""
    machine_module.DECODE_CACHE_DEFAULT = False
    try:
        yield
    finally:
        machine_module.DECODE_CACHE_DEFAULT = True


def summarize(result: RunResult) -> tuple:
    return (
        result.status,
        result.exit_code,
        type(result.fault).__name__ if result.fault else None,
        str(result.fault) if result.fault else None,
        result.instructions,
        result.output,
        result.shell_spawned,
    )


def run_c_both_ways(source: str, stdin: bytes = b"") -> tuple:
    results = []
    traces = []
    for cache in (True, False):
        program = c_program(source, trace=True)
        program.machine.config.decode_cache = cache
        program.feed(stdin)
        results.append(program.run())
        traces.append(program.machine.trace)
    assert traces[0] == traces[1]
    return summarize(results[0]), summarize(results[1])


C_SCENARIOS = {
    "hot-loop": """
void main() {
    int acc = 0;
    int i;
    for (i = 0; i < 300; i++) {
        acc += i * 3 - 1;
    }
    print_int(acc);
}
""",
    "array-fold": """
void main() {
    int a[16];
    int i;
    for (i = 0; i < 16; i++) {
        a[i] = i * i - 7;
    }
    int total = 0;
    for (i = 0; i < 16; i++) {
        total += a[i];
    }
    print_int(total);
}
""",
    "recursion": """
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
void main() {
    print_int(fib(12));
}
""",
    "division-fault": """
void main() {
    int zero = 0;
    print_int(100 / zero);
}
""",
}


class TestCompiledPrograms:
    @pytest.mark.parametrize("name", sorted(C_SCENARIOS))
    def test_compiled_program_identical(self, name):
        cached, uncached = run_c_both_ways(C_SCENARIOS[name])
        assert cached == uncached


def _machine_pair(setup):
    """Build two identical bare machines via ``setup``, run both, and
    return their (summary, trace) pairs."""
    outcomes = []
    for cache in (True, False):
        machine = Machine(MachineConfig(trace=True, decode_cache=cache))
        setup(machine)
        result = machine.run(max_instructions=10_000)
        outcomes.append((summarize(result), machine.trace))
    return outcomes


class TestAdversarialPrograms:
    def test_self_modifying_identical(self):
        loop, exit_at = 0x100C, 0x103A
        program = encode_many([
            build.mov_ri(R0, 0),
            build.mov_ri(R2, 0),
            build.add_ri(R0, 1),           # patched to `add r0, 2` below
            build.add_ri(R2, 1),
            build.cmp_ri(R2, 2),
            build.jz(exit_at),
            build.mov_ri(R1, loop),
            build.mov_ri(R3, 0x0002000B),
            build.store(R3, Mem(R1, 0)),
            build.jmp_abs(loop),
            build.sys(3),
        ])

        def setup(machine):
            machine.memory.map_region(0x1000, 0x1000, PERM_RWX)
            machine.memory.map_region(0x00200000, 0x10000, PERM_RW)
            machine.memory.write_bytes(0x1000, program)
            machine.cpu.ip = 0x1000
            machine.cpu.sp = 0x0020F000

        (cached, cached_trace), (uncached, uncached_trace) = _machine_pair(setup)
        assert cached == uncached
        assert cached_trace == uncached_trace
        assert cached[1] == 3  # and both actually ran the patched bytes

    def test_runtime_injection_identical(self):
        shellcode = encode_many([build.mov_ri(R0, 7), build.sys(3)])
        word0 = int.from_bytes(shellcode[0:4], "little")
        word1 = int.from_bytes(shellcode[4:8], "little")
        main = encode_many([
            build.jmp_abs(0x2000),
            build.mov_ri(R1, 0x2000),      # 0x1005
            build.mov_ri(R2, word0),
            build.store(R2, Mem(R1, 0)),
            build.mov_ri(R2, word1),
            build.store(R2, Mem(R1, 4)),
            build.jmp_abs(0x2000),
        ])
        stub = encode_many([build.mov_ri(R0, 1), build.jmp_abs(0x1005)])

        def setup(machine):
            machine.memory.map_region(0x1000, 0x1000, PERM_RWX)
            machine.memory.map_region(0x2000, 0x1000, PERM_RWX)
            machine.memory.map_region(0x00200000, 0x10000, PERM_RW)
            machine.memory.write_bytes(0x1000, main)
            machine.memory.write_bytes(0x2000, stub)
            machine.cpu.ip = 0x1000
            machine.cpu.sp = 0x0020F000

        (cached, cached_trace), (uncached, uncached_trace) = _machine_pair(setup)
        assert cached == uncached
        assert cached_trace == uncached_trace
        assert cached[1] == 7


def _attack_summary(result):
    return (
        result.outcome,
        result.detail,
        summarize(result.run) if result.run is not None else None,
    )


class TestAttackPipelines:
    """Whole attack pipelines (which build machines internally) agree."""

    def test_fig1_injection_exploit_identical(self, uncached_default):
        from repro.attacks import attack_stack_smash_injection

        uncached = _attack_summary(attack_stack_smash_injection(NONE))
        machine_module.DECODE_CACHE_DEFAULT = True
        cached = _attack_summary(attack_stack_smash_injection(NONE))
        assert cached == uncached
        assert cached[2][6]  # the exploit spawns its shell either way

    def test_rop_chain_identical(self, uncached_default):
        from repro.attacks import attack_rop_shell

        uncached = _attack_summary(attack_rop_shell(DEP))
        machine_module.DECODE_CACHE_DEFAULT = True
        cached = _attack_summary(attack_rop_shell(DEP))
        assert cached == uncached

    def test_dep_blocks_injection_identically(self, uncached_default):
        from repro.attacks import attack_stack_smash_injection

        uncached = _attack_summary(attack_stack_smash_injection(DEP))
        machine_module.DECODE_CACHE_DEFAULT = True
        cached = _attack_summary(attack_stack_smash_injection(DEP))
        assert cached == uncached
