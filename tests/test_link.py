"""Tests for the linker and loader."""

import pytest

from repro.asm import assemble
from repro.errors import LinkError
from repro.link import LayoutPlan, link, load
from repro.machine.memory import PAGE_SIZE, PERM_RW, PERM_RWX, PERM_RX
from repro.mitigations import ASLR, DEP, MitigationConfig, NONE

SIMPLE_MAIN = """
.text
.global main
main:
    mov r0, 0
    sys 3
"""


class TestLinker:
    def test_entry_is_crt0(self):
        image = link([assemble(SIMPLE_MAIN, "m")])
        assert image.entry == image.symbols["_start"]
        assert image.entry == LayoutPlan().text_base

    def test_crt0_calls_main_and_exits(self):
        program = load([assemble(SIMPLE_MAIN, "m")])
        result = program.run()
        assert result.exit_code == 0

    def test_main_return_value_becomes_exit_code(self):
        program = load([assemble("""
.text
.global main
main:
    mov r0, 17
    ret
""", "m")])
        assert program.run().exit_code == 17

    def test_cross_module_symbols(self):
        helper = assemble("""
.text
.global helper
helper:
    mov r0, 9
    ret
""", "helper")
        main = assemble("""
.text
.global main
main:
    call helper
    ret
""", "main")
        program = load([main, helper])
        assert program.run().exit_code == 9

    def test_local_symbols_stay_private(self):
        a = assemble(".text\n.global main\nmain: call mine\nret\nmine: mov r0, 1\nret\n", "a")
        b = assemble(".text\nmine: mov r0, 2\nret\n", "b")
        program = load([a, b])
        # main's call resolves to a's local `mine`, not b's.
        assert program.run().exit_code == 1

    def test_undefined_symbol_rejected(self):
        obj = assemble(".text\n.global main\nmain: call missing\n", "m")
        with pytest.raises(LinkError, match="missing"):
            link([obj])

    def test_duplicate_globals_rejected(self):
        a = assemble(".text\n.global f\nf: ret\n", "a")
        b = assemble(".text\n.global f\nf: ret\n", "b")
        with pytest.raises(LinkError, match="duplicate global"):
            link([a, b], add_crt0=False)

    def test_duplicate_object_names_rejected(self):
        a = assemble(".text\n.global main\nmain: ret\n", "same")
        b = assemble(".text\nother: ret\n", "same")
        with pytest.raises(LinkError, match="duplicate object names"):
            link([a, b])

    def test_no_main_rejected(self):
        obj = assemble(".text\nfn: ret\n", "m")
        with pytest.raises(LinkError):
            link([obj])

    def test_overlapping_segments_rejected(self):
        obj = assemble(SIMPLE_MAIN + ".data\nblob: .space 64\n", "m")
        plan = LayoutPlan(text_base=0x08048000, data_base=0x08048004)
        with pytest.raises(LinkError, match="overlaps"):
            link([obj], plan)

    def test_data_relocation(self):
        obj = assemble("""
.text
.global main
main:
    mov r1, cell
    load r0, [r1]
    ret
.data
cell: .word 1234
""", "m")
        program = load([obj])
        assert program.run().exit_code == 1234

    def test_object_layout_recorded(self):
        image = link([assemble(SIMPLE_MAIN, "m")])
        text_range = image.object_layout["m"][".text"]
        assert text_range[1] - text_range[0] == 8  # mov(6) + sys(2)

    def test_memory_map_matches_figure1(self):
        """Text low (0x08048000, the paper's value), stack high."""
        image = link([assemble(SIMPLE_MAIN, "m")])
        plan = LayoutPlan()
        assert image.segment_named("text").addr == plan.text_base == 0x08048000
        stack_lo, stack_hi = image.stack_range
        assert stack_lo == plan.stack_base
        assert image.initial_sp < stack_hi
        assert image.initial_sp > stack_lo

    def test_function_addresses_exclude_internal_labels(self):
        obj = assemble(".text\n.global main\nmain: nop\n.Lloop: jmp .Lloop\n", "m")
        image = link([obj])
        assert image.symbols["m:main"] in image.function_addresses
        assert image.symbols["m:.Lloop"] not in image.function_addresses


class TestProtectedAndKernelLayout:
    def test_protected_module_segments(self):
        module = assemble("""
.text
.entry enter
enter:
    mov r0, 5
    ret
.data
value: .word 7
""", "mod")
        main = assemble(".text\n.global main\nmain: call enter\nret\n", "main")
        program = load([main, module])
        image = program.image
        spec = image.protected_modules[0]
        assert spec.name == "mod"
        assert spec.text_start == LayoutPlan().module_base
        assert spec.data_start % PAGE_SIZE == 0
        assert spec.entry_points == {"enter": spec.text_start}
        # The machine registered it.
        assert program.machine.pma.modules[0].name == "mod"
        assert program.run().exit_code == 5

    def test_kernel_region_registered(self):
        kernel = assemble(".text\nkmain: ret\n.kernel\n", "kmod")
        main = assemble(SIMPLE_MAIN, "main")
        program = load([main, kernel])
        start, end = program.machine.kernel_regions[0]
        assert start == LayoutPlan().kernel_base
        assert end > start


class TestLoader:
    def test_dep_sets_wx_permissions(self):
        program = load([assemble(SIMPLE_MAIN, "m")], DEP)
        memory = program.machine.memory
        text = program.image.segment_named("text")
        stack_lo, _ = program.image.stack_range
        assert memory.perms_at(text.addr) == PERM_RX
        assert memory.perms_at(stack_lo) == PERM_RW

    def test_no_dep_maps_rwx(self):
        program = load([assemble(SIMPLE_MAIN, "m")], NONE)
        memory = program.machine.memory
        text = program.image.segment_named("text")
        stack_lo, _ = program.image.stack_range
        assert memory.perms_at(text.addr) == PERM_RWX
        assert memory.perms_at(stack_lo) == PERM_RWX

    def test_aslr_changes_layout_with_seed(self):
        addresses = set()
        for seed in range(6):
            program = load([assemble(SIMPLE_MAIN, "m")], ASLR, seed=seed)
            addresses.add(program.image.segment_named("text").addr)
        assert len(addresses) > 1

    def test_aslr_deterministic_per_seed(self):
        first = load([assemble(SIMPLE_MAIN, "m")], ASLR, seed=3)
        second = load([assemble(SIMPLE_MAIN, "m")], ASLR, seed=3)
        assert (first.image.segment_named("text").addr
                == second.image.segment_named("text").addr)

    def test_aslr_zero_bits_means_fixed(self):
        first = load([assemble(SIMPLE_MAIN, "m")], NONE, seed=1)
        second = load([assemble(SIMPLE_MAIN, "m")], NONE, seed=2)
        assert (first.image.segment_named("text").addr
                == second.image.segment_named("text").addr)

    def test_aslr_program_still_works(self):
        for seed in range(4):
            program = load([assemble(SIMPLE_MAIN, "m")], ASLR, seed=seed)
            assert program.run().exit_code == 0

    def test_canary_cell_randomised_when_enabled(self):
        config = MitigationConfig(stack_canaries=True)
        values = set()
        for seed in range(4):
            program = load([assemble(SIMPLE_MAIN, "m")], config, seed=seed)
            values.add(program.machine.memory.read_word(program.image.canary_cell))
        assert len(values) > 1
        assert 0 not in values

    def test_canary_cell_zero_when_disabled(self):
        program = load([assemble(SIMPLE_MAIN, "m")], NONE, seed=5)
        assert program.machine.memory.read_word(program.image.canary_cell) == 0

    def test_cfi_targets_populated(self):
        program = load([assemble(SIMPLE_MAIN, "m")],
                       MitigationConfig(cfi=True))
        assert program.image.symbols["m:main"] in program.machine.indirect_targets

    def test_initial_registers(self):
        program = load([assemble(SIMPLE_MAIN, "m")])
        assert program.machine.cpu.ip == program.image.entry
        assert program.machine.cpu.sp == program.image.initial_sp
