"""Decode-cache invalidation: von-Neumann fidelity under caching.

The interpreter caches decoded instructions per executable page.  The
Section III attacks (code injection, self-modifying shellcode) only
behave faithfully if any write into an executable page kills the
page's cached decodes, and any permission flip kills everything.  Each
test here makes the machine execute an address, rewrite its bytes, and
execute it again -- asserting the *newly written* bytes are what runs.
"""

import pytest

from repro.isa import Mem, R0, R1, R2, R3, build, encode_many
from repro.machine import Machine, MachineConfig, RunStatus
from repro.machine.memory import Memory, PERM_RW, PERM_RX, PERM_RWX


def rwx_machine(**config_kwargs) -> Machine:
    machine = Machine(MachineConfig(**config_kwargs))
    machine.memory.map_region(0x1000, 0x1000, PERM_RWX)
    machine.memory.map_region(0x00200000, 0x10000, PERM_RW)
    machine.cpu.ip = 0x1000
    machine.cpu.sp = 0x0020F000
    return machine


class TestSelfModifyingCode:
    """A program that overwrites its own upcoming instruction."""

    def _program(self):
        # Loop body at T is `add r0, 1` on the first pass; before the
        # second pass the program overwrites T's first word so it
        # becomes `add r0, 2`.  Final r0 is 3 only if the rewritten
        # bytes execute; a stale cached decode would produce 2.
        loop = 0x100C
        exit_at = 0x103A
        insns = [
            build.mov_ri(R0, 0),            # 0x1000
            build.mov_ri(R2, 0),            # 0x1006
            build.add_ri(R0, 1),            # 0x100C  <- T, later patched
            build.add_ri(R2, 1),            # 0x1012  pass counter
            build.cmp_ri(R2, 2),            # 0x1018
            build.jz(exit_at),              # 0x101E
            build.mov_ri(R1, loop),         # 0x1023
            # New first word of T: opcode 0x0B (add_ri), reg r0,
            # immediate low half 0x0002 -> `add r0, 2`.
            build.mov_ri(R3, 0x0002000B),   # 0x1029
            build.store(R3, Mem(R1, 0)),    # 0x102F
            build.jmp_abs(loop),            # 0x1035
            build.sys(3),                   # 0x103A  exit(r0)
        ]
        return encode_many(insns)

    @pytest.mark.parametrize("cache", [True, False])
    def test_patched_instruction_executes(self, cache):
        machine = rwx_machine(decode_cache=cache)
        machine.memory.write_bytes(0x1000, self._program())
        result = machine.run()
        assert result.status is RunStatus.EXITED
        assert result.exit_code == 3  # 1 (original) + 2 (patched)


class TestCodeInjection:
    """Inject shellcode into an already-executed RWX page, then run it."""

    @pytest.mark.parametrize("cache", [True, False])
    def test_injected_bytes_execute(self, cache):
        machine = rwx_machine(decode_cache=cache)
        machine.memory.map_region(0x2000, 0x1000, PERM_RWX)
        # Original stub at 0x2000: executed once first, so its decodes
        # are cached before the injection overwrites them.
        stub = encode_many([build.mov_ri(R0, 1), build.jmp_abs(0x1005)])
        machine.memory.write_bytes(0x2000, stub)
        shellcode = encode_many([build.mov_ri(R0, 7), build.sys(3)])
        assert len(shellcode) == 8
        word0 = int.from_bytes(shellcode[0:4], "little")
        word1 = int.from_bytes(shellcode[4:8], "little")
        main = [
            build.jmp_abs(0x2000),           # 0x1000: run the stub
            # 0x1005: injection, through the machine's checked stores
            build.mov_ri(R1, 0x2000),        # 0x1005
            build.mov_ri(R2, word0),         # 0x100B
            build.store(R2, Mem(R1, 0)),     # 0x1011
            build.mov_ri(R2, word1),         # 0x1017
            build.store(R2, Mem(R1, 4)),     # 0x101D
            build.jmp_abs(0x2000),           # 0x1023: run the shellcode
        ]
        machine.memory.write_bytes(0x1000, encode_many(main))
        result = machine.run(max_instructions=1_000)
        assert result.status is RunStatus.EXITED
        assert result.exit_code == 7  # the injected payload, not the stub


class TestPermFlip:
    """set_perms W->X: freshly written then newly-executable bytes run."""

    @pytest.mark.parametrize("cache", [True, False])
    def test_write_then_execute_cycle(self, cache):
        machine = rwx_machine(decode_cache=cache)
        machine.memory.map_region(0x3000, 0x1000, PERM_RW)
        machine.memory.write_bytes(
            0x3000, encode_many([build.mov_ri(R0, 5), build.sys(3)])
        )
        machine.memory.set_perms(0x3000, 0x1000, PERM_RX)
        machine.cpu.ip = 0x3000
        assert machine.run().exit_code == 5
        # Flip back to writable, rewrite, flip executable again: the
        # second generation of bytes must be what executes.
        machine.memory.set_perms(0x3000, 0x1000, PERM_RW)
        machine.memory.write_bytes(
            0x3000, encode_many([build.mov_ri(R0, 9), build.sys(3)])
        )
        machine.memory.set_perms(0x3000, 0x1000, PERM_RX)
        machine.cpu.ip = 0x3000
        assert machine.run().exit_code == 9


class TestCacheMechanics:
    """White-box checks on population and page-granular invalidation.

    Pinned to ``block_cache=False``: these tests populate the decode
    cache by running, and block-mode runs dispatch through translated
    blocks without per-instruction decode caching (the block cache has
    its own white-box suite in tests/test_block_cache.py).
    """

    def test_cache_populates_and_write_invalidates_page(self):
        machine = rwx_machine(block_cache=False)
        machine.memory.write_bytes(
            0x1000, encode_many([build.mov_ri(R0, 4), build.sys(3)])
        )
        machine.run()
        assert 0x1000 in machine._decode_cache
        machine.memory.write_byte(0x1000, 0x00)  # raw write, same page
        assert 0x1000 not in machine._decode_cache
        assert (0x1000 >> 12) not in machine._decode_pages

    def test_word_write_invalidates(self):
        machine = rwx_machine(block_cache=False)
        machine.memory.write_bytes(
            0x1000, encode_many([build.mov_ri(R0, 4), build.sys(3)])
        )
        machine.run()
        assert machine._decode_cache
        machine.memory.write_word(0x1004, 0)
        assert 0x1000 not in machine._decode_cache

    def test_writes_to_other_pages_keep_cache(self):
        machine = rwx_machine(block_cache=False)
        machine.memory.write_bytes(
            0x1000, encode_many([build.mov_ri(R0, 4), build.sys(3)])
        )
        machine.run()
        assert 0x1000 in machine._decode_cache
        machine.memory.write_word(0x00200000, 0xDEAD)  # data page
        assert 0x1000 in machine._decode_cache

    def test_disabled_cache_stays_empty(self):
        machine = rwx_machine(decode_cache=False, block_cache=False)
        machine.memory.write_bytes(
            0x1000, encode_many([build.mov_ri(R0, 4), build.sys(3)])
        )
        machine.run()
        assert machine._decode_cache == {}

    def test_pma_registration_flushes(self):
        from repro.pma.module import ProtectedModule

        machine = rwx_machine(block_cache=False)
        machine.memory.write_bytes(
            0x1000, encode_many([build.mov_ri(R0, 4), build.sys(3)])
        )
        machine.run()
        assert machine._decode_cache
        module = ProtectedModule(
            name="m", text_start=0x5000, text_end=0x5010,
            data_start=0x6000, data_end=0x6010,
            entry_points=frozenset({0x5000}),
        )
        machine.pma.register(module, b"\x00" * 16)
        assert machine._decode_cache == {}


class TestWrappedAddressMasking:
    """map_region/set_perms/range_perms mask addresses like the raw
    accessors do, so wrapped addresses near 2**32 hit real pages."""

    def test_map_region_masks_address(self):
        mem = Memory()
        mem.map_region((1 << 32) + 0x4000, 0x1000, PERM_RW)
        assert mem.is_mapped(0x4000)
        assert mem.perms_at(0x4000) == PERM_RW

    def test_set_perms_masks_address(self):
        mem = Memory()
        mem.map_region(0x4000, 0x1000, PERM_RW)
        mem.set_perms((1 << 32) + 0x4000, 0x1000, PERM_RX)
        assert mem.perms_at(0x4000) == PERM_RX

    def test_range_perms_wraps_like_read_bytes(self):
        mem = Memory()
        mem.map_region(0xFFFFF000, 0x1000, PERM_RW)
        mem.map_region(0x0000, 0x1000, PERM_RX)
        # A 8-byte range straddling the top of the address space
        # touches the last and the first page, exactly as read_bytes
        # does.
        assert mem.range_perms(0xFFFFFFFC, 8) == (PERM_RW & PERM_RX)
        mem.write_bytes(0xFFFFFFFC, b"ABCDEFGH")
        assert mem.read_bytes(0xFFFFFFFC, 8) == b"ABCDEFGH"
        assert mem.read_bytes(0x0, 4) == b"EFGH"

    def test_iter_words_matches_per_word_reads(self):
        mem = Memory()
        mem.map_region(0x4000, 0x2000, PERM_RW)
        payload = bytes((i * 7 + 3) & 0xFF for i in range(0x2000))
        mem.write_bytes(0x4000, payload)
        words = list(mem.iter_words(0x4000, 0x6000))
        assert len(words) == 0x2000 // 4
        for addr, word in words[:64] + words[-64:]:
            assert word == mem.read_word(addr)

    def test_iter_words_unaligned_page_straddle(self):
        mem = Memory()
        mem.map_region(0x4000, 0x2000, PERM_RW)
        mem.write_bytes(0x4FFE, b"\x01\x02\x03\x04")
        words = dict(mem.iter_words(0x4FFE, 0x5002))
        assert words[0x4FFE] == 0x04030201
