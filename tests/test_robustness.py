"""Robustness: hostile inputs must never escape the simulation.

Whatever bytes run on the machine -- random garbage, self-modifying
code, wild pointers -- the *host* must only ever see a RunResult.  A
Python-level exception leaking out of Machine.run would let a
simulated attack crash the experiment harness.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.machine import Machine, MachineConfig, RunStatus
from repro.machine.memory import PERM_RW, PERM_RWX


def fresh_machine(config=None):
    machine = Machine(config or MachineConfig())
    machine.memory.map_region(0x1000, 0x2000, PERM_RWX)
    machine.memory.map_region(0x00200000, 0x10000, PERM_RW)
    machine.cpu.ip = 0x1000
    machine.cpu.sp = 0x0020F000
    return machine


class TestRandomCode:
    @settings(max_examples=120, deadline=None)
    @given(st.binary(min_size=1, max_size=256))
    def test_random_bytes_as_program(self, blob):
        machine = fresh_machine()
        machine.memory.write_bytes(0x1000, blob)
        result = machine.run(max_instructions=2_000)
        assert result.status in (RunStatus.EXITED, RunStatus.HALTED,
                                 RunStatus.FAULT)

    @settings(max_examples=60, deadline=None)
    @given(st.binary(min_size=1, max_size=128), st.integers(0, 2 ** 32 - 1))
    def test_random_code_random_sp(self, blob, sp):
        machine = fresh_machine()
        machine.memory.write_bytes(0x1000, blob)
        machine.cpu.sp = sp
        result = machine.run(max_instructions=2_000)
        assert result.status in (RunStatus.EXITED, RunStatus.HALTED,
                                 RunStatus.FAULT)

    @settings(max_examples=40, deadline=None)
    @given(st.binary(min_size=1, max_size=128))
    def test_random_code_with_enforcement(self, blob):
        machine = fresh_machine(MachineConfig(shadow_stack=True, cfi=True,
                                              redzones=True))
        machine.memory.write_bytes(0x1000, blob)
        machine.poison(0x00200100, 64)
        result = machine.run(max_instructions=2_000)
        assert result.status in (RunStatus.EXITED, RunStatus.HALTED,
                                 RunStatus.FAULT)

    @settings(max_examples=40, deadline=None)
    @given(st.binary(min_size=1, max_size=64))
    def test_random_code_with_pma(self, blob):
        from repro.pma.module import PMAController, ProtectedModule

        pma = PMAController()
        pma.register(ProtectedModule(
            name="m", text_start=0x2000, text_end=0x2100,
            data_start=0x00201000, data_end=0x00201100,
            entry_points=frozenset({0x2000}),
        ), b"\x25" * 0x100)
        machine = fresh_machine()
        machine.pma = pma
        machine.memory.write_bytes(0x1000, blob)
        result = machine.run(max_instructions=2_000)
        assert result.status in (RunStatus.EXITED, RunStatus.HALTED,
                                 RunStatus.FAULT)


class TestHostileInputsToPrograms:
    @settings(max_examples=30, deadline=None)
    @given(st.binary(max_size=300))
    def test_fig1_never_escapes(self, data):
        from repro.programs import build_fig1

        program = build_fig1(wide_open=True)
        program.feed(data)
        result = program.run(200_000)
        assert result.status in (RunStatus.EXITED, RunStatus.HALTED,
                                 RunStatus.FAULT)

    @settings(max_examples=25, deadline=None)
    @given(st.binary(max_size=64))
    def test_secret_module_never_escapes(self, data):
        from repro.programs import build_secret_program

        program = build_secret_program(protected=True, secure=True)
        program.feed(data)
        result = program.run(500_000)
        assert result.status in (RunStatus.EXITED, RunStatus.HALTED,
                                 RunStatus.FAULT)

    @settings(max_examples=25, deadline=None)
    @given(st.binary(max_size=96))
    def test_heap_victim_never_escapes(self, data):
        from repro.attacks.heap import build_heap_program
        from repro.programs import heap as heap_sources

        program = build_heap_program(heap_sources.HEAP_UAF_VICTIM,
                                     checked_allocator=True)
        program.feed(data)
        result = program.run(500_000)
        assert result.status in (RunStatus.EXITED, RunStatus.HALTED,
                                 RunStatus.FAULT)


class TestToolchainRobustness:
    @settings(max_examples=60, deadline=None)
    @given(st.text(max_size=120))
    def test_compiler_rejects_or_accepts_cleanly(self, source):
        """Arbitrary text either compiles or raises a ReproError --
        never an uncontrolled exception."""
        from repro.minic import compile_source

        try:
            compile_source(source, "fuzz")
        except ReproError:
            pass

    @settings(max_examples=60, deadline=None)
    @given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                   max_size=120))
    def test_assembler_rejects_or_accepts_cleanly(self, source):
        from repro.asm import assemble

        try:
            assemble(source, "fuzz")
        except ReproError:
            pass


# -- near-valid inputs ------------------------------------------------------
#
# Purely random text almost never gets past the lexer, so the deep
# parser/assembler paths go untested by the strategies above (which is
# exactly how the `0x`-at-EOF lexer crash survived until PR 9).  These
# strategies instead *mutate valid programs*: splice, truncate, and
# perturb real source so the input reaches declarators, operand
# builders, directives and literal parsing -- and assert the toolchain
# answers with its own diagnostics (CompileError/AssemblerError, both
# ReproError), never a bare ValueError/IndexError.

_MINC_TEMPLATE = """\
static int PIN = 1234;
static char table[8] = {1, 2, 3};
static char *greeting = "hi\\n";

int helper(int a, char *p) {
    int local[4];
    local[0] = a + 'x';
    while (a > 0) { a -= 1; }
    for (a = 0; a < 3; a++) { p[a] = a; }
    return local[0] ? a : -a;
}

int main(void) {
    int (*fn)(int, char *) = helper;
    return fn(PIN, greeting) + table[1];
}
"""

_ASM_TEMPLATE = """\
.text
main:
    push bp
    mov bp, sp
    sub sp, 0x18
    lea r0, [bp-0x10]
    mov r1, table+4
    load r2, [r1]
    cmp r2, 'A'
    jz done
    call helper
    jmp main
helper:
    shl r0, 2
    store [bp-8], r0
    ret
done:
    sys 3
    halt
.data
greeting: .asciiz "hi\\n"
buf:      .space 16
table:    .word main, 0x1234, -1
flags:    .byte 1, 2, 255
.align 4
.global main
"""

#: Fragments spliced into templates: literal edge shapes the pure
#: random strategies essentially never synthesise.
_HOSTILE_FRAGMENTS = (
    "0x", "0X", "'", "''", "'\\", "'\\x", '"\\x"', '"\\xZZ"', '"\\', "\\",
    '"€"', "'€'", "ÿ", "Ā",
    "99999999999999999999", "-99999999999999999999",
    "[", "]", "(", ")", "{", "}", ",", ";", ":", "*", "&", "-", "+",
    ".space", ".space -1", ".space 1 x", ".align 0", ".align 99999999999",
    ".byte 999", ".word", ".ascii", '.ascii "\\x"', ".entry", ".global",
    "mov", "mov r0", "mov r0,", "load r0, [zz+0x]", "[bp-",
)


def _mutations(template: str):
    """Hypothesis strategy: a near-valid source derived from ``template``."""
    operations = st.lists(
        st.tuples(
            st.sampled_from(["delete", "dup", "insert", "truncate"]),
            st.integers(0, len(template) - 1),
            st.sampled_from(_HOSTILE_FRAGMENTS),
        ),
        min_size=1, max_size=4,
    )

    def apply(ops):
        text = template
        for kind, pos, fragment in ops:
            pos = min(pos, len(text))
            if kind == "delete":
                text = text[:pos] + text[pos + 1:]
            elif kind == "dup":
                text = text[:pos] + text[pos:pos + 12] + text[pos:]
            elif kind == "insert":
                text = text[:pos] + fragment + text[pos:]
            else:
                text = text[:pos]
        return text

    return operations.map(apply)


class TestNearValidToolchainRobustness:
    @settings(max_examples=200, deadline=None)
    @given(_mutations(_MINC_TEMPLATE))
    def test_parser_survives_near_valid_minc(self, source):
        """Mutated-but-recognisable MinC reaches deep parser paths;
        every rejection must be a diagnostic, never a raw
        ValueError/IndexError/UnicodeEncodeError."""
        from repro.minic import compile_source

        try:
            compile_source(source, "fuzz")
        except ReproError:
            pass

    @settings(max_examples=200, deadline=None)
    @given(_mutations(_ASM_TEMPLATE))
    def test_assembler_survives_near_valid_source(self, source):
        from repro.asm import assemble

        try:
            assemble(source, "fuzz")
        except ReproError:
            pass

    def test_regressions_flushed_out_by_the_property(self):
        """Directed pins for the leaks the near-valid property found:
        each used to raise ValueError/IndexError/UnicodeEncodeError."""
        from repro.asm import assemble
        from repro.minic import compile_source

        cases_minc = [
            'char *s = "€";',        # UnicodeEncodeError (latin-1)
            "int x = '€';",          # >0xFF char literal
            'char *s = "\\xZZ";',         # ValueError from int(_, 16)
        ]
        for source in cases_minc:
            with pytest.raises(ReproError):
                compile_source(source, "fuzz")
        cases_asm = [
            '.ascii "a\\x"',              # ValueError from int("", 16)
            '.ascii "a\\xzz"',            # ValueError from int("zz", 16)
            '.ascii "€"',            # UnicodeEncodeError (latin-1)
            ".space",                     # IndexError (no operand)
            ".space 4 x",                 # TypeError (None & 0xFF)
            '.text\n mov r0, "ab\\',      # IndexError (escape at EOL)
        ]
        for source in cases_asm:
            with pytest.raises(ReproError):
                assemble(source, "fuzz")