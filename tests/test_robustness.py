"""Robustness: hostile inputs must never escape the simulation.

Whatever bytes run on the machine -- random garbage, self-modifying
code, wild pointers -- the *host* must only ever see a RunResult.  A
Python-level exception leaking out of Machine.run would let a
simulated attack crash the experiment harness.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.machine import Machine, MachineConfig, RunStatus
from repro.machine.memory import PERM_RW, PERM_RWX


def fresh_machine(config=None):
    machine = Machine(config or MachineConfig())
    machine.memory.map_region(0x1000, 0x2000, PERM_RWX)
    machine.memory.map_region(0x00200000, 0x10000, PERM_RW)
    machine.cpu.ip = 0x1000
    machine.cpu.sp = 0x0020F000
    return machine


class TestRandomCode:
    @settings(max_examples=120, deadline=None)
    @given(st.binary(min_size=1, max_size=256))
    def test_random_bytes_as_program(self, blob):
        machine = fresh_machine()
        machine.memory.write_bytes(0x1000, blob)
        result = machine.run(max_instructions=2_000)
        assert result.status in (RunStatus.EXITED, RunStatus.HALTED,
                                 RunStatus.FAULT)

    @settings(max_examples=60, deadline=None)
    @given(st.binary(min_size=1, max_size=128), st.integers(0, 2 ** 32 - 1))
    def test_random_code_random_sp(self, blob, sp):
        machine = fresh_machine()
        machine.memory.write_bytes(0x1000, blob)
        machine.cpu.sp = sp
        result = machine.run(max_instructions=2_000)
        assert result.status in (RunStatus.EXITED, RunStatus.HALTED,
                                 RunStatus.FAULT)

    @settings(max_examples=40, deadline=None)
    @given(st.binary(min_size=1, max_size=128))
    def test_random_code_with_enforcement(self, blob):
        machine = fresh_machine(MachineConfig(shadow_stack=True, cfi=True,
                                              redzones=True))
        machine.memory.write_bytes(0x1000, blob)
        machine.poison(0x00200100, 64)
        result = machine.run(max_instructions=2_000)
        assert result.status in (RunStatus.EXITED, RunStatus.HALTED,
                                 RunStatus.FAULT)

    @settings(max_examples=40, deadline=None)
    @given(st.binary(min_size=1, max_size=64))
    def test_random_code_with_pma(self, blob):
        from repro.pma.module import PMAController, ProtectedModule

        pma = PMAController()
        pma.register(ProtectedModule(
            name="m", text_start=0x2000, text_end=0x2100,
            data_start=0x00201000, data_end=0x00201100,
            entry_points=frozenset({0x2000}),
        ), b"\x25" * 0x100)
        machine = fresh_machine()
        machine.pma = pma
        machine.memory.write_bytes(0x1000, blob)
        result = machine.run(max_instructions=2_000)
        assert result.status in (RunStatus.EXITED, RunStatus.HALTED,
                                 RunStatus.FAULT)


class TestHostileInputsToPrograms:
    @settings(max_examples=30, deadline=None)
    @given(st.binary(max_size=300))
    def test_fig1_never_escapes(self, data):
        from repro.programs import build_fig1

        program = build_fig1(wide_open=True)
        program.feed(data)
        result = program.run(200_000)
        assert result.status in (RunStatus.EXITED, RunStatus.HALTED,
                                 RunStatus.FAULT)

    @settings(max_examples=25, deadline=None)
    @given(st.binary(max_size=64))
    def test_secret_module_never_escapes(self, data):
        from repro.programs import build_secret_program

        program = build_secret_program(protected=True, secure=True)
        program.feed(data)
        result = program.run(500_000)
        assert result.status in (RunStatus.EXITED, RunStatus.HALTED,
                                 RunStatus.FAULT)

    @settings(max_examples=25, deadline=None)
    @given(st.binary(max_size=96))
    def test_heap_victim_never_escapes(self, data):
        from repro.attacks.heap import build_heap_program
        from repro.programs import heap as heap_sources

        program = build_heap_program(heap_sources.HEAP_UAF_VICTIM,
                                     checked_allocator=True)
        program.feed(data)
        result = program.run(500_000)
        assert result.status in (RunStatus.EXITED, RunStatus.HALTED,
                                 RunStatus.FAULT)


class TestToolchainRobustness:
    @settings(max_examples=60, deadline=None)
    @given(st.text(max_size=120))
    def test_compiler_rejects_or_accepts_cleanly(self, source):
        """Arbitrary text either compiles or raises a ReproError --
        never an uncontrolled exception."""
        from repro.minic import compile_source

        try:
            compile_source(source, "fuzz")
        except ReproError:
            pass

    @settings(max_examples=60, deadline=None)
    @given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                   max_size=120))
    def test_assembler_rejects_or_accepts_cleanly(self, source):
        from repro.asm import assemble

        try:
            assemble(source, "fuzz")
        except ReproError:
            pass