"""Serialized-snapshot differential suite (to_bytes/from_bytes).

The distributed-campaign prerequisite: a :class:`MachineSnapshot`
serialized to bytes, shipped anywhere, and deserialized must restore a
machine into a state *byte-identical* to restoring the original
snapshot object -- same run results, same memory image, same device
and PMA state -- on every dispatch leg (interpreter, superblocks,
trace JIT) and onto both the original machine and a fresh build of the
same image.
"""

from __future__ import annotations

import pytest

from repro.machine.machine import MachineSnapshot
from repro.mitigations.config import NONE, TESTING
from repro.programs.builders import build_secret_program, build_victim
from tests.test_differential_cache import summarize

GET_SMASH = b"GET " + b"A" * 32


def fig1(block_cache: bool = True, trace_jit: bool = False):
    target = build_victim("fig1_staged", TESTING)
    target.machine.config.block_cache = block_cache
    target.machine.config.trace_jit = trace_jit
    return target


def mem_digest(machine) -> list[tuple[int, bytes]]:
    """The full sparse memory image (page number, page bytes)."""
    return sorted(
        (page, bytes(buf)) for page, buf in machine.memory._pages.items()
    )


def machine_digest(machine) -> tuple:
    cpu = machine.cpu
    return (
        tuple(cpu.regs), cpu.ip, cpu.zf, cpu.lt, cpu.ult,
        machine.instructions_executed,
        machine.output.save_state(),
        machine.input.save_state(),
        machine.shell.save_state(),
        machine.rng.save_state(),
        mem_digest(machine),
    )


class TestWireFormat:
    def test_round_trip_preserves_every_field(self):
        machine = fig1().machine
        machine.input.feed(b"GET ")
        machine.run(10_000)
        snap = machine.snapshot()
        back = MachineSnapshot.from_bytes(snap.to_bytes())
        assert back.regs == snap.regs
        assert back.ip == snap.ip
        assert (back.zf, back.lt, back.ult) == (snap.zf, snap.lt, snap.ult)
        assert back.instructions_executed == snap.instructions_executed
        assert back.input_state == snap.input_state
        assert back.output_state == snap.output_state
        assert back.shell_state == snap.shell_state
        assert back.rng_state == snap.rng_state
        assert back.kernel_regions == snap.kernel_regions
        assert back.indirect_targets == snap.indirect_targets
        assert back.redzones == snap.redzones
        assert back.shadow_stack == snap.shadow_stack
        assert back.memory.perms == snap.memory.perms
        assert sorted(back.memory.pages) == sorted(snap.memory.pages)
        for page, buf in snap.memory.pages.items():
            assert bytes(back.memory.pages[page]) == bytes(buf)

    def test_wire_epoch_never_matches_live(self):
        machine = fig1().machine
        snap = machine.snapshot()
        back = MachineSnapshot.from_bytes(snap.to_bytes())
        again = MachineSnapshot.from_bytes(snap.to_bytes())
        assert back.memory.epoch != snap.memory.epoch
        assert back.memory.epoch != again.memory.epoch
        assert back.memory.epoch < 0

    def test_compression_beats_raw_pages(self):
        snap = fig1().machine.snapshot()
        raw = snap.pages * 4096
        assert len(snap.to_bytes()) < raw // 4

    def test_rejects_bad_magic_and_version(self):
        blob = fig1().machine.snapshot().to_bytes()
        with pytest.raises(ValueError, match="not a serialized"):
            MachineSnapshot.from_bytes(b"XXXX" + blob[4:])
        with pytest.raises(ValueError, match="version"):
            MachineSnapshot.from_bytes(blob[:4] + b"\xff" + blob[5:])


class TestRestoreDifferential:
    """serialize -> deserialize -> restore == direct restore."""

    @pytest.mark.parametrize("block_cache,trace_jit", [
        (False, False), (True, False), (True, True),
    ])
    def test_identical_to_direct_restore(self, block_cache, trace_jit):
        direct = fig1(block_cache, trace_jit).machine
        wired = fig1(block_cache, trace_jit).machine
        blob = None
        snaps = {}
        for name, machine in (("direct", direct), ("wired", wired)):
            machine.input.feed(b"GET x")
            machine.run(50_000)
            snaps[name] = machine.snapshot()
        blob = snaps["wired"].to_bytes()
        digests = []
        for machine, snap in ((direct, snaps["direct"]),
                              (wired, MachineSnapshot.from_bytes(blob))):
            # Diverge hard (a crashing run dirties many pages), then
            # rewind and run a second input from the restore point.
            machine.input.feed(GET_SMASH)
            machine.run(50_000)
            machine.restore(snap)
            machine.input.feed(b"zz")
            result = machine.run(50_000)
            digests.append((summarize(result), machine_digest(machine)))
        assert digests[0] == digests[1]

    def test_restores_onto_fresh_machine(self):
        source = fig1().machine
        source.input.feed(b"GET ")
        source.run(20_000)
        blob = source.snapshot().to_bytes()
        source.input.feed(b"A" * 36)
        expected = summarize(source.run(50_000))

        fresh = fig1().machine
        fresh.restore(MachineSnapshot.from_bytes(blob))
        fresh.input.feed(b"A" * 36)
        assert summarize(fresh.run(50_000)) == expected
        assert machine_digest(fresh) == machine_digest(source)

    def test_repeated_restores_of_wire_snapshot(self):
        """After the first identity-diff restore the wire snapshot
        participates in O(dirty) epoch tracking like any native one."""
        machine = fig1().machine
        back = MachineSnapshot.from_bytes(machine.snapshot().to_bytes())
        results = []
        for _ in range(3):
            machine.restore(back)
            machine.input.feed(GET_SMASH)
            results.append(summarize(machine.run(50_000)))
        assert results[0] == results[1] == results[2]


class TestPMALeg:
    """PMA machines: module table, current module and counters travel."""

    def build(self):
        return build_secret_program(NONE, protected=True, secure=True)

    def test_round_trip_restores_pma_state(self):
        target = self.build()
        machine = target.machine
        machine.run(50_000)
        snap = machine.snapshot()
        back = MachineSnapshot.from_bytes(snap.to_bytes())
        assert len(back.pma_state[0]) == len(snap.pma_state[0])
        assert back.pma_state[1] == snap.pma_state[1]
        names = [m.name for m in snap.pma_state[0]]
        assert [m.name for m in back.pma_state[0]] == names
        for ours, theirs in zip(snap.pma_state[0], back.pma_state[0]):
            assert ours.measurement == theirs.measurement
            assert ours.module_key == theirs.module_key
            assert ours.entry_points == theirs.entry_points

    def test_current_module_identity_survives(self):
        """``current_module`` must reference a module *in* the
        deserialized table (one pickle keeps the identity link)."""
        target = self.build()
        machine = target.machine
        machine.run(50_000)
        snap = machine.snapshot()
        back = MachineSnapshot.from_bytes(snap.to_bytes())
        if back.current_module is not None:
            assert any(back.current_module is module
                       for module in back.pma_state[0])

    def test_fresh_machine_runs_identically(self):
        source = self.build().machine
        source.run(20_000)
        blob = source.snapshot().to_bytes()
        expected = summarize(source.run(200_000))

        fresh = self.build().machine
        fresh.restore(MachineSnapshot.from_bytes(blob))
        assert summarize(fresh.run(200_000)) == expected
