"""Tests for Software Fault Isolation: the rewriter and the sandbox."""

import pytest

from repro.asm import assemble
from repro.errors import LinkError
from repro.isa.encoding import decode_all
from repro.machine import RunStatus
from repro.minic import CompileOptions, compile_source
from repro.sfi import sfi_rewrite
from repro.experiments.sfi_exp import (
    BENIGN_SANDBOX,
    HOSTILE_READ,
    HOSTILE_SYSCALL,
    HOSTILE_WRITE,
    HOST_MAIN,
    asymmetry_report,
    build_sfi_program,
    sfi_table,
)


class TestRewriter:
    def _rewrite(self, source: str):
        return sfi_rewrite(assemble(source, "sandbox"))

    def test_output_decodes_cleanly(self):
        obj = self._rewrite("""
.text
.global sandbox_main
sandbox_main:
    mov r1, 0x12345678
    load r0, [r1+4]
    store [r1], r0
    ret
""")
        decode_all(bytes(obj.text.data))  # must not raise
        assert obj.sfi

    def test_memory_ops_guarded(self):
        obj = self._rewrite("""
.text
f: load r0, [r1+8]
   ret
""")
        mnemonics = [insn.mnemonic
                     for _, insn in decode_all(bytes(obj.text.data))]
        assert "and" in mnemonics and "or" in mnemonics
        # Guard base symbols referenced via relocations.
        symbols = {r.symbol for r in obj.text.relocations}
        assert "__sfi_sandbox" in symbols
        assert "__sfi_text" in symbols      # from the rewritten ret
        assert "__sfi_exit" in symbols

    def test_sys_replaced_with_halt(self):
        obj = self._rewrite(".text\nf: sys 4\nret\n")
        mnemonics = [insn.mnemonic
                     for _, insn in decode_all(bytes(obj.text.data))]
        assert "sys" not in mnemonics
        assert "halt" in mnemonics

    def test_symbols_remapped(self):
        obj = self._rewrite("""
.text
first: nop
second: load r0, [r1]
        ret
third: ret
""")
        # All symbols still present, monotone, and pointing at
        # instruction starts.
        offsets = [obj.symbols[name].offset
                   for name in ("first", "second", "third")]
        assert offsets == sorted(offsets)
        starts = {addr for addr, _ in decode_all(bytes(obj.text.data))}
        for offset in offsets:
            assert offset in starts

    def test_internal_branches_preserved(self):
        """Internal jump targets survive via relocations."""
        source = """
.text
.global sandbox_main
sandbox_main:
    mov r0, 0
    mov r2, 0
.Lloop:
    add r0, 7
    add r2, 1
    cmp r2, 5
    jnz .Lloop
    ret
"""
        program = build_sfi_program(assemble(source, "sandbox"), rewrite=True)
        result = program.run()
        assert [int(x) for x in result.output.split()][0] == 35

    def test_protected_object_rejected(self):
        obj = assemble(".text\n.entry e\ne: ret\n.data\nd: .word 0\n", "m")
        rewritten = sfi_rewrite(obj)
        from repro.link import load

        with pytest.raises(LinkError):
            rewritten.protected = True
            load([assemble(".text\n.global main\nmain: ret\n", "main"),
                  rewritten])

    def test_two_sandboxes_rejected(self):
        from repro.link import load
        from repro.sfi import sfi_runtime_object

        a = sfi_rewrite(assemble(".text\nfa: ret\n", "a"))
        b = sfi_rewrite(assemble(".text\nfb: ret\n", "b"))
        with pytest.raises(LinkError, match="one SFI sandbox"):
            load([assemble(".text\n.global main\nmain: ret\n", "main"),
                  a, b, sfi_runtime_object()])


class TestSandboxBehaviour:
    def test_benign_module_computes(self):
        benign = compile_source(BENIGN_SANDBOX, "sandbox", CompileOptions())
        program = build_sfi_program(benign, rewrite=True)
        result = program.run()
        assert result.status is RunStatus.EXITED
        values = [int(x) for x in result.output.split()]
        assert values[0] == sum(7 + i for i in range(16))
        assert values[1] == 99119911  # host state untouched

    def test_hostile_read_contained(self):
        program = build_sfi_program(
            assemble(HOSTILE_READ.format(secret=0x08100000), "sandbox"),
            rewrite=True,
        )
        result = program.run()
        values = [int(x) for x in result.output.split()] if result.output else []
        assert 99119911 not in values[:1]

    def test_hostile_read_succeeds_raw(self):
        # Control: the same module, loaded without rewriting, reads the
        # host secret -- layout from a same-shaped study link.
        study = build_sfi_program(
            assemble(HOSTILE_READ.format(secret=0), "sandbox"), rewrite=False)
        secret = study.image.symbol("host:host_secret")
        program = build_sfi_program(
            assemble(HOSTILE_READ.format(secret=secret), "sandbox"),
            rewrite=False,
        )
        result = program.run()
        assert int(result.output.split()[0]) == 99119911

    def test_hostile_write_contained(self):
        study = build_sfi_program(
            assemble(HOSTILE_WRITE.format(secret=0), "sandbox"), rewrite=False)
        secret = study.image.symbol("host:host_secret")
        program = build_sfi_program(
            assemble(HOSTILE_WRITE.format(secret=secret), "sandbox"),
            rewrite=True,
        )
        result = program.run()
        assert program.machine.memory.read_word(secret) == 99119911

    def test_hostile_syscall_halted(self):
        program = build_sfi_program(assemble(HOSTILE_SYSCALL, "sandbox"),
                                    rewrite=True)
        result = program.run()
        assert not result.shell_spawned

    def test_full_table_shape(self):
        rows = sfi_table()
        by_key = {(r["module"], r["mode"]): r["outcome"] for r in rows}
        assert by_key[("benign computation", "sandboxed")] == "correct result"
        for module in ("hostile: reads host secret",
                       "hostile: writes host state",
                       "hostile: jumps into host code",
                       "hostile: invokes syscalls"):
            assert by_key[(module, "raw")] == "HOST COMPROMISED"
            assert by_key[(module, "sandboxed")].startswith("contained")

    def test_asymmetry(self):
        """The paper: SFI 'protects a host application from untrusted
        modules, but modules are not protected against the host'."""
        report = asymmetry_report()
        assert report["host_reads_sandbox_data"]