"""Tests for ROP gadget discovery and chain building."""

import pytest
from hypothesis import given, strategies as st

from repro.attacks.gadgets import (
    GadgetCatalog,
    build_exfiltration_chain,
    build_shell_chain,
    find_gadgets,
)
from repro.isa import R0, R1, build, encode_many
from repro.isa.registers import SP
from repro.machine import syscalls
from repro.programs import build_victim


class TestFindGadgets:
    def test_every_gadget_ends_in_ret(self):
        program = build_victim("fig1_wide_open")
        catalog = GadgetCatalog.from_image_segments(program.image.segments)
        assert catalog.gadgets
        for gadget in catalog.gadgets:
            assert gadget.instructions[-1].mnemonic == "ret"

    def test_no_flow_breakers_mid_gadget(self):
        program = build_victim("fig1_wide_open")
        catalog = GadgetCatalog.from_image_segments(program.image.segments)
        for gadget in catalog.gadgets:
            for insn in gadget.instructions[:-1]:
                assert insn.mnemonic not in ("jmp", "call", "halt", "ret",
                                             "jz", "jnz")

    def test_intended_gadgets_found(self):
        blob = encode_many([build.pop(R0), build.ret()])
        gadgets = find_gadgets(blob, 0x1000)
        pops = [g for g in gadgets if g.instructions[0].mnemonic == "pop"]
        assert pops and pops[0].address == 0x1000
        assert pops[0].intended

    def test_unintended_gadgets_exist(self):
        """An immediate containing the ret byte (0x25) yields a gadget
        at a misaligned offset the compiler never emitted."""
        blob = encode_many([
            build.mov_ri(R0, 0x25),   # imm bytes contain 0x25
            build.halt(),
        ])
        gadgets = find_gadgets(blob, 0)
        assert any(not g.intended for g in gadgets)

    def test_real_program_has_unintended_gadgets(self):
        program = build_victim("fig1_wide_open")
        catalog = GadgetCatalog.from_image_segments(program.image.segments)
        census = catalog.census()
        assert census["unintended"] > 0
        assert census["intended"] > 0
        assert census["total"] == census["intended"] + census["unintended"]

    def test_gadget_address_decodes_to_its_instructions(self):
        from repro.isa.encoding import decode

        program = build_victim("fig1_wide_open")
        text = program.image.segment_named("text")
        catalog = GadgetCatalog.from_image_segments([text])
        for gadget in catalog.gadgets[:50]:
            offset = gadget.address - text.addr
            insn, _ = decode(text.data, offset)
            assert insn == gadget.instructions[0]

    @given(st.binary(max_size=128))
    def test_never_crashes_on_arbitrary_bytes(self, blob):
        for gadget in find_gadgets(blob, 0):
            assert gadget.instructions[-1].mnemonic == "ret"


class TestCatalog:
    @pytest.fixture(scope="class")
    def catalog(self):
        program = build_victim("rop_exfil")
        return GadgetCatalog.from_image_segments(program.image.segments)

    def test_pop_gadgets_from_libc(self, catalog):
        for reg in (0, 1, 2, 3):
            gadget = catalog.pop_register(reg)
            assert gadget is not None
            assert gadget.instructions[0].operands == (reg,)

    def test_syscall_gadgets(self, catalog):
        assert catalog.syscall_gadget(syscalls.SYS_WRITE) is not None
        assert catalog.syscall_gadget(syscalls.SYS_SPAWN_SHELL) is not None

    def test_stack_pivot_trampoline(self, catalog):
        """The paper's ROP 'trampoline': pop sp; ret."""
        pivot = catalog.stack_pivot()
        assert pivot is not None
        assert pivot.instructions[0].operands == (SP,)

    def test_find_by_mnemonics(self, catalog):
        assert catalog.find("pop", "ret") is not None
        assert catalog.find("halt", "ret") is None

    def test_shell_chain_shape(self, catalog):
        chain = build_shell_chain(catalog)
        assert chain is not None and len(chain) == 2

    def test_exfiltration_chain_shape(self, catalog):
        chain = build_exfiltration_chain(catalog, 0x08100000, 16)
        assert chain is not None
        assert 1 in chain and 16 in chain and 0x08100000 in chain

    def test_chain_missing_gadgets_returns_none(self):
        empty = GadgetCatalog([])
        assert build_shell_chain(empty) is None
        assert build_exfiltration_chain(empty, 0, 4) is None


class TestPayloadHelpers:
    def test_smash_layout_plain(self):
        from repro.attacks.payloads import p32, smash

        payload = smash(20, 0xDEADBEEF, 0x11111111)
        assert len(payload) == 28
        assert payload[20:24] == p32(0xDEADBEEF)
        assert payload[24:28] == p32(0x11111111)

    def test_smash_layout_with_canary_and_bp(self):
        from repro.attacks.payloads import p32, smash

        payload = smash(24, 0xAAAA, canary=0xC0FFEE, saved_bp=0xBFFF0000)
        assert payload[16:20] == p32(0xC0FFEE)      # canary at offset-8
        assert payload[20:24] == p32(0xBFFF0000)    # saved bp at offset-4
        assert payload[24:28] == p32(0xAAAA)        # return slot at offset

    def test_smash_with_prefix(self):
        from repro.attacks.payloads import smash

        payload = smash(16, 0x1, prefix=b"\x90\x90")
        assert payload.startswith(b"\x90\x90")
        assert len(payload) == 20

    def test_cyclic_unique_tags(self):
        from repro.attacks.payloads import cyclic, cyclic_find, u32

        pattern = cyclic(64)
        assert len(pattern) == 64
        assert cyclic_find(u32(pattern, 12)) == 12

    def test_cyclic_find_rejects_garbage(self):
        from repro.attacks.payloads import cyclic_find

        with pytest.raises(ValueError):
            cyclic_find(0xFFFFFFFF)
