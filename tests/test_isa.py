"""Tests for the VN32 ISA layer: registers, builders, encode/decode."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DecodeError, EncodingError
from repro.isa import (
    BP,
    Instruction,
    Mem,
    OPCODE_TABLE,
    R0,
    R1,
    RET_OPCODE,
    SP,
    build,
    decode,
    decode_all,
    encode,
    encode_many,
    register_name,
    register_number,
    to_signed,
    to_unsigned,
)
from repro.isa import build as b
from repro.isa.opcodes import FORMAT_LENGTHS, OperandFormat


class TestRegisters:
    def test_names_roundtrip(self):
        for number in range(10):
            assert register_number(register_name(number)) == number

    def test_sp_bp_are_general_registers(self):
        # POP SP must be encodable: stack pivots depend on it.
        assert register_number("sp") == SP == 8
        assert register_number("bp") == BP == 9

    def test_case_insensitive(self):
        assert register_number("R3") == 3

    def test_unknown_register(self):
        with pytest.raises(ValueError):
            register_number("r9")
        with pytest.raises(ValueError):
            register_name(10)


class TestSignedness:
    def test_to_signed(self):
        assert to_signed(0xFFFFFFFF) == -1
        assert to_signed(0x80000000) == -(1 << 31)
        assert to_signed(0x7FFFFFFF) == (1 << 31) - 1

    def test_to_unsigned(self):
        assert to_unsigned(-1) == 0xFFFFFFFF
        assert to_unsigned(1 << 32) == 0

    @given(st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1))
    def test_roundtrip(self, value):
        assert to_signed(to_unsigned(value)) == value


class TestBuilders:
    def test_reg_range_checked(self):
        with pytest.raises(EncodingError):
            build.mov_rr(10, 0)
        with pytest.raises(EncodingError):
            build.push(-1)

    def test_imm8_range_checked(self):
        with pytest.raises(EncodingError):
            build.sys(256)
        with pytest.raises(EncodingError):
            build.shl(0, -1)

    def test_imm32_wraps_negative(self):
        insn = build.mov_ri(0, -1)
        assert insn.operands[1] == 0xFFFFFFFF

    def test_ret_is_single_byte(self):
        assert encode(build.ret()) == bytes([RET_OPCODE])
        assert len(encode(build.ret())) == 1

    def test_variable_lengths(self):
        # The ISA is variable-length like the paper's x86 example.
        lengths = {len(encode(insn)) for insn in (
            build.ret(), build.push(0), build.sys(1),
            build.mov_ri(0, 5), build.jmp_abs(0), build.load(0, Mem(BP, -4)),
        )}
        assert lengths == {1, 2, 5, 6}


def _sample_instruction(spec):
    """A representative instruction for each opcode."""
    fmt = spec.fmt
    if fmt is OperandFormat.NONE:
        return Instruction(spec.opcode, ())
    if fmt is OperandFormat.REG:
        return Instruction(spec.opcode, (3,))
    if fmt is OperandFormat.REGREG:
        return Instruction(spec.opcode, (2, 9))
    if fmt is OperandFormat.REGIMM32:
        return Instruction(spec.opcode, (1, 0xDEADBEEF))
    if fmt is OperandFormat.REGIMM8:
        return Instruction(spec.opcode, (4, 17))
    if fmt is OperandFormat.REGMEM:
        return Instruction(spec.opcode, (5, Mem(8, -0x18)))
    if fmt is OperandFormat.IMM32:
        return Instruction(spec.opcode, (0x08048000,))
    if fmt is OperandFormat.IMM8:
        return Instruction(spec.opcode, (3,))
    raise AssertionError(fmt)


class TestEncoding:
    @pytest.mark.parametrize("spec", OPCODE_TABLE, ids=lambda s: f"{s.mnemonic}_{s.opcode:02x}")
    def test_roundtrip_every_opcode(self, spec):
        insn = _sample_instruction(spec)
        blob = encode(insn)
        assert len(blob) == FORMAT_LENGTHS[spec.fmt]
        decoded, length = decode(blob)
        assert length == len(blob)
        assert decoded == insn

    def test_little_endian_imm(self):
        blob = encode(build.mov_ri(0, 0x11223344))
        assert blob[2:6] == bytes([0x44, 0x33, 0x22, 0x11])

    def test_invalid_opcode_raises(self):
        with pytest.raises(DecodeError):
            decode(bytes([0xFF]))

    def test_invalid_register_nibble_raises(self):
        # REGREG with register 0xA..0xF is invalid.
        with pytest.raises(DecodeError):
            decode(bytes([0x02, 0xAB]))

    def test_truncated_instruction_raises(self):
        blob = encode(build.mov_ri(0, 5))
        with pytest.raises(DecodeError):
            decode(blob[:3])

    def test_decode_offset_beyond_end(self):
        with pytest.raises(DecodeError):
            decode(b"", 0)

    def test_encode_many_and_decode_all(self):
        instructions = [build.push(BP), build.mov_rr(BP, SP), build.ret()]
        blob = encode_many(instructions)
        decoded = decode_all(blob, base_address=0x1000)
        assert [insn for _, insn in decoded] == instructions
        assert [addr for addr, _ in decoded] == [0x1000, 0x1002, 0x1004]

    def test_misaligned_decode_differs(self):
        """Decoding at the wrong offset yields different instructions --
        the property that creates unintended ROP gadgets."""
        blob = encode(build.mov_ri(0, RET_OPCODE))  # imm contains 0x25
        decoded, _ = decode(blob, 2)  # first imm byte
        assert decoded.mnemonic == "ret"

    @given(st.binary(min_size=1, max_size=16))
    def test_decode_never_crashes_unexpectedly(self, blob):
        """Arbitrary bytes either decode or raise DecodeError."""
        try:
            insn, length = decode(blob)
        except DecodeError:
            return
        assert 1 <= length <= 6
        assert encode(insn) == blob[:length]


class TestFormatting:
    def test_store_operand_order(self):
        text = str(build.store(R1, Mem(BP, -8)))
        assert text == "store [bp-0x8], r1"

    def test_load_operand_order(self):
        assert str(build.load(R0, Mem(SP, 4))) == "load r0, [sp+0x4]"

    def test_mem_zero_disp(self):
        assert str(Mem(R0)) == "[r0]"

    def test_regimm(self):
        assert str(build.cmp_ri(R0, 0)) == "cmp r0, 0x0"
