"""Tests for the I/O-attacker suite against selected postures.

The full sweep lives in the E4 benchmark; here each attack is pinned
against the postures where the paper's narrative makes a specific
prediction.
"""

import pytest

from repro.attacks import io_attacks
from repro.attacks.base import Outcome
from repro.mitigations import (
    ASLR,
    CANARY,
    DEP,
    DEPLOYED,
    HARDENED,
    NONE,
)


class TestStackSmashInjection:
    def test_succeeds_unmitigated(self):
        assert io_attacks.attack_stack_smash_injection(NONE).succeeded

    def test_canary_detects(self):
        result = io_attacks.attack_stack_smash_injection(CANARY)
        assert result.outcome is Outcome.DETECTED

    def test_dep_blocks_injected_code(self):
        result = io_attacks.attack_stack_smash_injection(DEP)
        assert result.outcome is Outcome.DETECTED

    def test_aslr_derails(self):
        result = io_attacks.attack_stack_smash_injection(ASLR, seed=11)
        assert not result.succeeded


class TestCodeReuse:
    def test_ret2libc_defeats_dep(self):
        assert io_attacks.attack_ret2libc(DEP).succeeded

    def test_rop_defeats_dep(self):
        assert io_attacks.attack_rop_shell(DEP).succeeded

    def test_rop_exfiltration_defeats_dep(self):
        result = io_attacks.attack_rop_exfiltrate(DEP)
        assert result.succeeded
        assert b"MK-7F3A55E90C2" in result.evidence["leak"]

    def test_rop_pivot_defeats_dep_with_tight_overflow(self):
        """The paper's trampoline: SP is reset into attacker-controlled
        data, so the chain does not need to fit in the overflow."""
        result = io_attacks.attack_rop_pivot(DEP)
        assert result.succeeded

    def test_rop_pivot_blocked_by_canary(self):
        from repro.attacks.base import Outcome

        assert io_attacks.attack_rop_pivot(CANARY).outcome is Outcome.DETECTED

    def test_rop_pivot_blocked_by_shadow_stack(self):
        from repro.attacks.base import Outcome
        from repro.mitigations import MitigationConfig

        result = io_attacks.attack_rop_pivot(MitigationConfig(shadow_stack=True))
        assert result.outcome is Outcome.DETECTED

    def test_canary_blocks_both(self):
        assert not io_attacks.attack_ret2libc(CANARY).succeeded
        assert not io_attacks.attack_rop_shell(CANARY).succeeded

    def test_aslr_blocks_blind_reuse(self):
        assert not io_attacks.attack_ret2libc(ASLR, seed=13).succeeded


class TestCodePointerOverwrite:
    def test_funcptr_to_libc_evades_canary_and_dep(self):
        from repro.mitigations import CANARY_DEP

        assert io_attacks.attack_funcptr_to_libc(CANARY_DEP).succeeded

    def test_funcptr_to_injected_blocked_by_dep(self):
        result = io_attacks.attack_funcptr_to_injected(DEP)
        assert result.outcome is Outcome.DETECTED

    def test_funcptr_to_injected_works_without_dep(self):
        assert io_attacks.attack_funcptr_to_injected(NONE).succeeded

    def test_cfi_blocks_non_function_target(self):
        from repro.mitigations import MitigationConfig

        result = io_attacks.attack_funcptr_to_injected(
            MitigationConfig(cfi=True))
        assert result.outcome is Outcome.DETECTED

    def test_coarse_cfi_misses_function_entry_target(self):
        """The known limitation: a hijack aimed at a *legitimate
        function entry* passes coarse CFI."""
        from repro.mitigations import MitigationConfig

        result = io_attacks.attack_funcptr_to_libc(MitigationConfig(cfi=True))
        assert result.succeeded


class TestCodeCorruption:
    def test_succeeds_unmitigated(self):
        assert io_attacks.attack_code_corruption(NONE).succeeded

    def test_dep_blocks_text_write(self):
        result = io_attacks.attack_code_corruption(DEP)
        assert result.outcome is Outcome.DETECTED


class TestDataOnly:
    @pytest.mark.parametrize("config", [NONE, CANARY, DEP, DEPLOYED, HARDENED],
                             ids=lambda c: c.describe())
    def test_survives_every_posture(self, config):
        assert io_attacks.attack_data_only(config).succeeded


class TestInfoLeak:
    @pytest.mark.parametrize("config", [NONE, CANARY, DEP, DEPLOYED, HARDENED],
                             ids=lambda c: c.describe())
    def test_heartbleed_survives_every_posture(self, config):
        result = io_attacks.attack_heartbleed(config)
        assert result.succeeded
        assert b"KEY-19A7F3C055E" in result.evidence["leak"]

    def test_leak_then_smash_beats_deployed_triple(self):
        """[5]: canary + DEP + ASLR together fall to a leak."""
        result = io_attacks.attack_leak_then_smash(DEPLOYED, seed=21)
        assert result.succeeded

    def test_leak_then_smash_blocked_by_shadow_stack(self):
        result = io_attacks.attack_leak_then_smash(HARDENED, seed=21)
        assert result.outcome is Outcome.DETECTED

    def test_leak_reveals_actual_canary(self):
        """The leaked word really is the loaded canary value."""
        from repro.attacks.payloads import p32, u32
        from repro.attacks.study import locate_overflow
        from repro.programs import build_victim

        study = build_victim("leak_then_smash", CANARY)
        site = locate_overflow(study, read_occurrence=4,
                               feed=p32(1) + p32(16) + p32(28) + b"y" * 16)
        offset = site.offset_to_return

        victim = build_victim("leak_then_smash", CANARY, seed=33)
        true_canary = victim.machine.memory.read_word(victim.image.canary_cell)
        victim.feed(p32(1) + p32(0) + p32(offset + 4))
        result = victim.run()
        leaked = result.output[-(offset + 4):]
        assert u32(leaked, offset - 8) == true_canary
