"""Differential testing: the invariant monitor vs unmonitored runs.

The monitor is dispatch-transparent, so unlike every earlier observer
it rides the block-translation tier instead of demoting the machine to
per-instruction stepping.  That makes two proof obligations:

* **non-perturbation, per leg** -- a monitored run is byte-identical
  (status, exit code, fault message, instruction count, output,
  registers, flags) to an unmonitored run on each dispatch leg:
  pure interpreter, block translation, and block+trace JIT;
* **attribution stability, across legs** -- the breach timeline
  (invariant, ordinal, IP, detail, pre/post, call stack) is identical
  no matter which leg produced it, so first-breach attribution never
  depends on how the machine happened to dispatch.

Scenarios deliberately include the adversarial cases: a bulk-read
stack smash (object-bounds + return-integrity), self-modifying code
(W^X), and whole attack pipelines.
"""

from __future__ import annotations

import pytest

from repro.isa import Mem, R0, R1, R2, R3, build, encode_many
from repro.machine import Machine, MachineConfig
from repro.machine.memory import PERM_RWX
from repro.mitigations import NONE
from repro.observe import InvariantMonitor, observe_new_machines
from tests.conftest import c_program
from tests.test_differential_cache import C_SCENARIOS, summarize

#: The three dispatch legs: (block_cache, trace_jit).
LEGS = {
    "interp": (False, False),
    "block": (True, False),
    "trace": (True, True),
}

#: A MinC victim whose bulk read() overruns a stack buffer; 64 bytes
#: of filler clobber the saved return address too.
VULN_SOURCE = """
void vuln() {
    int buf[4];
    read(0, buf, 64);
    print_int(buf[0]);
}
void main() { vuln(); }
"""
SMASH_PAYLOAD = b"A" * 64


def timeline_key(monitor: InvariantMonitor | None) -> tuple:
    if monitor is None:
        return ()
    return tuple(
        (b.invariant, b.seq, b.ip, b.detail, repr(b.pre), repr(b.post),
         b.call_stack)
        for b in monitor.timeline
    )


def run_c_leg(source: str, stdin: bytes, leg: str,
              monitored: bool) -> tuple:
    program = c_program(source)
    machine = program.machine
    machine.config.block_cache, machine.config.trace_jit = LEGS[leg]
    monitor = None
    if monitored:
        monitor = InvariantMonitor()
        machine.attach_observer(monitor)
        monitor.bind_program(program)
    program.feed(stdin)
    result = program.run()
    state = (
        summarize(result),
        tuple(machine.cpu.regs),
        machine.cpu.ip,
        (machine.cpu.zf, machine.cpu.lt, machine.cpu.ult),
        machine.instructions_executed,
    )
    return state, timeline_key(monitor)


class TestCleanProgramsIdentical:
    @pytest.mark.parametrize("leg", sorted(LEGS))
    @pytest.mark.parametrize("name", sorted(C_SCENARIOS))
    def test_monitored_equals_unmonitored(self, name, leg):
        plain, _ = run_c_leg(C_SCENARIOS[name], b"", leg, monitored=False)
        observed, timeline = run_c_leg(C_SCENARIOS[name], b"", leg,
                                       monitored=True)
        assert observed == plain
        assert timeline == ()


class TestSmashedRunIdentical:
    @pytest.mark.parametrize("leg", sorted(LEGS))
    def test_monitored_equals_unmonitored(self, leg):
        plain, _ = run_c_leg(VULN_SOURCE, SMASH_PAYLOAD, leg,
                             monitored=False)
        observed, _ = run_c_leg(VULN_SOURCE, SMASH_PAYLOAD, leg,
                                monitored=True)
        assert observed == plain

    def test_breach_timeline_identical_across_legs(self):
        timelines = {}
        states = {}
        for leg in LEGS:
            states[leg], timelines[leg] = run_c_leg(
                VULN_SOURCE, SMASH_PAYLOAD, leg, monitored=True)
        assert timelines["interp"] != ()
        invariants = [b[0] for b in timelines["interp"]]
        assert "object-bounds" in invariants
        assert "return-integrity" in invariants
        assert timelines["block"] == timelines["interp"]
        assert timelines["trace"] == timelines["interp"]
        assert states["block"] == states["interp"]
        assert states["trace"] == states["interp"]


class TestSelfModifyingIdentical:
    def _program(self) -> bytes:
        loop, exit_at = 0x100C, 0x103A
        return encode_many([
            build.mov_ri(R0, 0),
            build.mov_ri(R2, 0),
            build.add_ri(R0, 1),
            build.add_ri(R2, 1),
            build.cmp_ri(R2, 2),
            build.jz(exit_at),
            build.mov_ri(R1, loop),
            build.mov_ri(R3, 0x0002000B),
            build.store(R3, Mem(R1, 0)),
            build.jmp_abs(loop),
            build.sys(3),
        ])

    def _run(self, leg: str, monitored: bool) -> tuple:
        machine = Machine(MachineConfig())
        machine.config.block_cache, machine.config.trace_jit = LEGS[leg]
        monitor = None
        if monitored:
            monitor = InvariantMonitor()
            machine.attach_observer(monitor)
        machine.memory.map_region(0x1000, 0x1000, PERM_RWX)
        machine.memory.map_region(0x00200000, 0x10000, PERM_RWX)
        machine.memory.write_bytes(0x1000, self._program())
        machine.cpu.ip = 0x1000
        machine.cpu.sp = 0x0020F000
        result = machine.run(max_instructions=10_000)
        state = (summarize(result), tuple(machine.cpu.regs),
                 machine.instructions_executed)
        return state, timeline_key(monitor)

    @pytest.mark.parametrize("leg", sorted(LEGS))
    def test_monitored_equals_unmonitored(self, leg):
        plain, _ = self._run(leg, monitored=False)
        observed, timeline = self._run(leg, monitored=True)
        assert observed == plain
        assert any(b[0] == "wx-write" for b in timeline)

    def test_wx_timeline_identical_across_legs(self):
        timelines = [self._run(leg, monitored=True)[1]
                     for leg in sorted(LEGS)]
        assert timelines[0] != ()
        assert timelines[0] == timelines[1] == timelines[2]


def _attack_summary(result):
    return (
        result.outcome,
        result.detail,
        summarize(result.run) if result.run is not None else None,
    )


class TestAttackPipelinesIdentical:
    """Whole attack pipelines agree monitored vs not, on every leg
    (legs selected via the environment switches the machines honour)."""

    def _run_smash(self, monkeypatch, leg: str):
        from repro.attacks import attack_stack_smash_injection

        block, trace = LEGS[leg]
        monkeypatch.setenv("REPRO_BLOCK_CACHE", "1" if block else "0")
        monkeypatch.setenv("REPRO_TRACE", "1" if trace else "0")
        plain = _attack_summary(attack_stack_smash_injection(NONE))
        monitors: list[InvariantMonitor] = []

        def factory(machine):
            monitor = InvariantMonitor()
            monitors.append(monitor)
            return monitor

        with observe_new_machines(factory):
            observed = _attack_summary(attack_stack_smash_injection(NONE))
        timeline = ()
        for monitor in reversed(monitors):
            if monitor.timeline:
                timeline = timeline_key(monitor)
                break
        return plain, observed, timeline

    @pytest.mark.parametrize("leg", sorted(LEGS))
    def test_monitored_exploit_identical(self, monkeypatch, leg):
        plain, observed, timeline = self._run_smash(monkeypatch, leg)
        assert observed == plain
        assert plain[2][6]          # the shell spawns either way
        assert timeline[0][0] == "return-integrity"

    def test_exploit_timeline_identical_across_legs(self, monkeypatch):
        timelines = [self._run_smash(monkeypatch, leg)[2]
                     for leg in sorted(LEGS)]
        assert timelines[0] == timelines[1] == timelines[2]
