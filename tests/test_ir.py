"""Unit tests for the decoded IR layer (repro.machine.ir).

The IR's def/use and control metadata drive both translation tiers:
the superblock builder consumes ``ends_block``/``lift_block`` and the
trace compiler consumes register effects and FLAGS liveness.  A wrong
``reads``/``writes`` set silently miscompiles, so the effects are
pinned per instruction class here.
"""

from __future__ import annotations

import pytest

from repro.isa import Mem, R0, R1, R2, R3, build, encode_many
from repro.machine import Machine, MachineConfig
from repro.machine.ir import (
    BRANCH_FLAGS_READ,
    COMPARE_FLAGS,
    ControlKind,
    RESULT_FLAGS,
    lift,
    lift_at,
    lift_block,
)
from repro.machine.memory import PERM_RWX

CODE = 0x1000


def lift_one(insn, addr=CODE):
    return lift(insn, addr)


class TestRegisterEffects:
    def test_mov_ri_writes_only(self):
        irx = lift_one(build.mov_ri(R2, 7))
        assert irx.reads == frozenset()
        assert irx.writes == {R2}

    def test_mov_rr_reads_source(self):
        irx = lift_one(build.mov_rr(R2, R3))
        assert irx.reads == {R3}
        assert irx.writes == {R2}

    def test_load_reads_base_writes_dest(self):
        irx = lift_one(build.load(R0, Mem(R1, 8)))
        assert irx.reads == {R1}
        assert irx.writes == {R0}

    def test_store_reads_both_writes_none(self):
        irx = lift_one(build.store(R0, Mem(R1, 8)))
        assert irx.reads == {R0, R1}
        assert irx.writes == frozenset()

    def test_push_reads_source_and_sp_writes_sp(self):
        irx = lift_one(build.push(R3))
        assert irx.reads == {R3, 8}
        assert irx.writes == {8}

    def test_pop_reads_sp_writes_dest_and_sp(self):
        irx = lift_one(build.pop(R3))
        assert irx.reads == {8}
        assert irx.writes == {R3, 8}

    def test_alu_rr_reads_both_writes_dest(self):
        irx = lift_one(build.add_rr(R0, R1))
        assert irx.reads == {R0, R1}
        assert irx.writes == {R0}

    def test_call_touches_sp(self):
        irx = lift_one(build.call_abs(0x2000))
        assert 8 in irx.reads and 8 in irx.writes

    def test_ret_touches_sp(self):
        irx = lift_one(build.ret())
        assert 8 in irx.reads and 8 in irx.writes


class TestFlagEffects:
    def test_arith_writes_result_flags(self):
        assert lift_one(build.add_ri(R0, 1)).flags_written == RESULT_FLAGS

    def test_cmp_writes_all_flags(self):
        assert lift_one(build.cmp_ri(R0, 5)).flags_written == COMPARE_FLAGS

    def test_mov_writes_no_flags(self):
        assert lift_one(build.mov_ri(R0, 5)).flags_written == frozenset()

    def test_branches_read_their_predicate(self):
        assert lift_one(build.jz(0x2000)).flags_read == {"zf"}
        assert lift_one(build.jle(0x2000)).flags_read == {"zf", "lt"}
        assert lift_one(build.jb(0x2000)).flags_read == {"ult"}
        # The table drives the trace compiler's lazy-flag decisions:
        # every conditional branch opcode must appear in it.
        assert len(BRANCH_FLAGS_READ) == 8


class TestControlKinds:
    def test_straight_line(self):
        irx = lift_one(build.add_ri(R0, 1))
        assert irx.kind is ControlKind.FALL
        assert not irx.ends_block
        assert irx.next_addr == CODE + irx.length

    def test_branch_has_both_edges(self):
        irx = lift_one(build.jnz(0x2000))
        assert irx.kind is ControlKind.BRANCH
        assert irx.target == 0x2000
        assert irx.next_addr == CODE + irx.length
        assert irx.ends_block

    def test_call_is_a_block_end_with_target(self):
        irx = lift_one(build.call_abs(0x2000))
        assert irx.kind is ControlKind.CALL
        assert irx.target == 0x2000

    def test_indirect_kinds(self):
        assert lift_one(build.jmp_reg(R1)).kind is ControlKind.JUMP_REG
        assert lift_one(build.call_reg(R1)).kind is ControlKind.CALL_REG
        assert lift_one(build.ret()).kind is ControlKind.RET
        assert lift_one(build.sys(3)).kind is ControlKind.SYS
        assert lift_one(build.halt()).kind is ControlKind.HALT


class TestLiftingFromMemory:
    def machine(self, insns):
        machine = Machine(MachineConfig(block_cache=False))
        machine.memory.map_region(CODE, 0x1000, PERM_RWX)
        machine.memory.write_bytes(CODE, encode_many(insns))
        return machine

    def test_lift_at_roundtrips_encoding(self):
        machine = self.machine([build.mov_ri(R0, 42)])
        irx = lift_at(machine.memory, CODE)
        assert irx.opcode == 0x03
        assert irx.operands == (R0, 42)

    def test_lift_at_unmapped_returns_none(self):
        machine = self.machine([build.nop()])
        assert lift_at(machine.memory, 0x9000) is None

    def test_lift_at_undecodable_returns_none(self):
        machine = self.machine([build.nop()])
        machine.memory.write_bytes(CODE, b"\xff")
        assert lift_at(machine.memory, CODE) is None

    def test_lift_block_stops_at_terminator(self):
        machine = self.machine([
            build.mov_ri(R0, 1),
            build.add_ri(R0, 2),
            build.jmp_abs(CODE),
            build.nop(),                    # unreachable: not lifted
        ])
        insns = lift_block(machine.memory, CODE, 64, set())
        assert [irx.opcode for irx in insns] == [0x03, 0x0B, 0x19]

    def test_lift_block_respects_cap(self):
        machine = self.machine([build.nop()] * 32 + [build.halt()])
        insns = lift_block(machine.memory, CODE, 8, set())
        assert len(insns) == 8
