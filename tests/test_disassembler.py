"""Tests for the linear-sweep disassembler."""

from repro.asm import assemble, disassemble, disassemble_text
from repro.isa import build, encode_many


class TestDisassembler:
    def test_roundtrip_with_assembler(self):
        obj = assemble("""
.text
fn:
    push bp
    mov bp, sp
    sub sp, 0x18
    call fn
    ret
""")
        text = disassemble_text(bytes(obj.text.data))
        assert "push bp" in text
        assert "mov bp, sp" in text
        assert "sub sp, 0x18" in text
        assert "ret" in text

    def test_addresses_and_bytes_shown(self):
        lines = disassemble(encode_many([build.ret()]), base_address=0x8048000)
        assert lines[0].address == 0x8048000
        assert lines[0].raw == b"\x25"
        rendered = lines[0].render()
        assert rendered.startswith("0x08048000")
        assert "25" in rendered

    def test_symbols_injected(self):
        blob = encode_many([build.nop(), build.ret()])
        lines = disassemble(blob, 0x100, symbols={0x101: "after_nop"})
        texts = [line.text for line in lines]
        assert "after_nop:" in texts

    def test_tolerant_mode_resyncs(self):
        blob = b"\xff" + encode_many([build.ret()])
        lines = disassemble(blob, 0)
        assert lines[0].text == ".byte 0xff"
        assert lines[1].text == "ret"

    def test_strict_mode_raises(self):
        import pytest
        from repro.errors import DecodeError

        with pytest.raises(DecodeError):
            disassemble(b"\xff", tolerant=False)

    def test_misaligned_view_differs(self):
        """The figure-1 property: same bytes, different meaning at
        different offsets (fuel for unintended gadgets)."""
        blob = encode_many([build.mov_ri(0, 0x25)])
        aligned = disassemble(blob)
        misaligned = disassemble(blob[2:])
        assert aligned[0].text.startswith("mov")
        assert any(line.text == "ret" for line in misaligned)
