"""Tests for the paged memory substrate."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MemoryFault
from repro.machine.memory import (
    Memory,
    PAGE_SIZE,
    PERM_R,
    PERM_RW,
    PERM_RWX,
    PERM_RX,
    PERM_W,
    PERM_X,
    perms_to_str,
)


@pytest.fixture
def memory():
    mem = Memory()
    mem.map_region(0x1000, 2 * PAGE_SIZE, PERM_RW)
    return mem


class TestMapping:
    def test_unmapped_read_faults(self, memory):
        with pytest.raises(MemoryFault):
            memory.read_byte(0x100000)

    def test_unmapped_write_faults(self, memory):
        with pytest.raises(MemoryFault):
            memory.write_byte(0x100000, 1)

    def test_is_mapped(self, memory):
        assert memory.is_mapped(0x1000)
        assert memory.is_mapped(0x1000 + 2 * PAGE_SIZE - 1)
        assert not memory.is_mapped(0x1000 + 2 * PAGE_SIZE)

    def test_map_partial_page_maps_whole_page(self):
        mem = Memory()
        mem.map_region(0x1FF0, 0x20, PERM_RW)  # straddles a page boundary
        assert mem.is_mapped(0x1000)
        assert mem.is_mapped(0x2000)

    def test_map_zero_size_is_noop(self):
        mem = Memory()
        mem.map_region(0x1000, 0, PERM_RW)
        assert not mem.is_mapped(0x1000)

    def test_remap_preserves_contents(self, memory):
        memory.write_word(0x1000, 0xCAFEBABE)
        memory.map_region(0x1000, PAGE_SIZE, PERM_RX)
        assert memory.read_word(0x1000) == 0xCAFEBABE
        assert memory.perms_at(0x1000) == PERM_RX

    def test_set_perms_unmapped_faults(self, memory):
        with pytest.raises(MemoryFault):
            memory.set_perms(0x900000, 4, PERM_R)

    def test_mapped_regions_coalesce(self):
        mem = Memory()
        mem.map_region(0x1000, PAGE_SIZE, PERM_RW)
        mem.map_region(0x2000, PAGE_SIZE, PERM_RW)
        mem.map_region(0x5000, PAGE_SIZE, PERM_RW)
        assert mem.mapped_regions() == [(0x1000, 0x3000), (0x5000, 0x6000)]


class TestAccess:
    def test_word_roundtrip_little_endian(self, memory):
        memory.write_word(0x1000, 0x11223344)
        assert memory.read_bytes(0x1000, 4) == bytes([0x44, 0x33, 0x22, 0x11])
        assert memory.read_word(0x1000) == 0x11223344

    def test_cross_page_access(self, memory):
        addr = 0x1000 + PAGE_SIZE - 2
        memory.write_word(addr, 0xAABBCCDD)
        assert memory.read_word(addr) == 0xAABBCCDD

    def test_byte_access(self, memory):
        memory.write_byte(0x1003, 0x1FF)  # truncated to 8 bits
        assert memory.read_byte(0x1003) == 0xFF

    def test_iter_words(self, memory):
        memory.write_word(0x1000, 1)
        memory.write_word(0x1004, 2)
        words = list(memory.iter_words(0x1000, 0x1008))
        assert words == [(0x1000, 1), (0x1004, 2)]

    @given(st.integers(min_value=0, max_value=PAGE_SIZE - 64),
           st.binary(min_size=1, max_size=64))
    def test_roundtrip_random(self, offset, data):
        mem = Memory()
        mem.map_region(0x4000, PAGE_SIZE, PERM_RW)
        mem.write_bytes(0x4000 + offset, data)
        assert mem.read_bytes(0x4000 + offset, len(data)) == data


class TestPermissions:
    def test_range_perms_intersects(self):
        mem = Memory()
        mem.map_region(0x1000, PAGE_SIZE, PERM_RWX)
        mem.map_region(0x2000, PAGE_SIZE, PERM_R)
        assert mem.range_perms(0x1000, 8) == PERM_RWX
        # A range spanning both pages has only the common permissions.
        assert mem.range_perms(0x1FFC, 8) == PERM_R

    def test_range_perms_unmapped_faults(self, memory):
        with pytest.raises(MemoryFault):
            memory.range_perms(0x1000 + 2 * PAGE_SIZE - 4, 8)

    def test_perms_to_str(self):
        assert perms_to_str(PERM_RX) == "r-x"
        assert perms_to_str(PERM_W) == "-w-"
        assert perms_to_str(0) == "---"
