"""The durable fuzzing service: store, resume, and convergence.

The acceptance bar for the service layer is *provable convergence*: a
campaign interrupted mid-run and resumed from the persistent store
must produce a report -- corpus contents, crash dedup set with
first-breach attribution, coverage curve -- identical to the
uninterrupted run, on both dispatch legs.  The store itself must
survive a real process restart, and the coordinator must drain
multiple jobs without cross-talk.
"""

from __future__ import annotations

import json
import pickle
import subprocess
import sys
from pathlib import Path

import pytest

import repro.machine.machine as machine_module
from repro.analysis.greybox import GreyboxFuzzer, VictimFactory
from repro.campaign.service import (
    CampaignCoordinator,
    CampaignSpec,
    report_digest,
)
from repro.campaign.store import CampaignStore, TriageRecord
from repro.mitigations.config import TESTING
from repro.observe.coverage import CrashSite

SRC = Path(__file__).resolve().parent.parent / "src"


def _fuzzer(**kwargs) -> GreyboxFuzzer:
    kwargs.setdefault("seed", 3)
    return GreyboxFuzzer(VictimFactory("data_only", TESTING),
                         program="data_only", config="testing",
                         invariants=True, **kwargs)


@pytest.fixture(params=[True, False], ids=["blocks", "stepped"])
def block_default(request):
    """Both dispatch legs: the resume contract may not depend on how
    the machine executes (workers inherit via pool initargs)."""
    previous = machine_module.BLOCK_CACHE_DEFAULT
    machine_module.BLOCK_CACHE_DEFAULT = request.param
    try:
        yield request.param
    finally:
        machine_module.BLOCK_CACHE_DEFAULT = previous


# ---------------------------------------------------------------------------
# Fuzzer-level checkpoint/resume
# ---------------------------------------------------------------------------


class TestCheckpointResume:
    BUDGET = 800

    def test_resume_report_identical_to_uninterrupted(self, block_default):
        """The acceptance criterion, at the fuzzer level: interrupt
        after one batch, resume from the pickled checkpoint, compare
        full-report fingerprints (corpus digest, crash dedup set with
        first_breach, coverage curve, minimized reproducers)."""
        full = _fuzzer().run(self.BUDGET)
        states: list[bytes] = []
        partial = _fuzzer().run(
            self.BUDGET, checkpoint=lambda s: states.append(pickle.dumps(s)),
            stop_after_batches=1)
        assert partial.interrupted
        assert partial.execs < full.execs
        resumed = _fuzzer().run(self.BUDGET,
                                resume=pickle.loads(states[-1]))
        assert not resumed.interrupted
        assert resumed.fingerprint() == full.fingerprint()
        # The fingerprint covers these, but assert the load-bearing
        # fields directly so a fingerprint bug can't mask a drift.
        assert resumed.execs == full.execs
        assert resumed.corpus_digest == full.corpus_digest
        assert ([(c.site, c.input, c.minimized) for c in resumed.crashes]
                == [(c.site, c.input, c.minimized) for c in full.crashes])
        assert resumed.crashes, "campaign should have found the bug"
        assert resumed.crashes[0].site.first_breach is not None

    def test_chained_interrupts_converge(self):
        """Interrupt, resume, interrupt again, resume again: any
        number of restarts converges to the same report."""
        full = _fuzzer().run(self.BUDGET)
        states: list[dict] = []
        _fuzzer().run(self.BUDGET, checkpoint=states.append,
                      stop_after_batches=1)
        states2: list[dict] = []
        mid = _fuzzer().run(self.BUDGET, resume=states[-1],
                            checkpoint=states2.append, stop_after_batches=1)
        assert mid.interrupted
        final = _fuzzer().run(self.BUDGET, resume=states2[-1])
        assert final.fingerprint() == full.fingerprint()

    def test_resume_with_rsnp_snapshot_bytes(self):
        """Resuming against the stored RSNP baseline image (instead of
        trusting a rebuild) produces the same report."""
        full = _fuzzer().run(self.BUDGET)
        snapshot = _fuzzer().baseline_snapshot_bytes()
        assert snapshot.startswith(b"RSNP")
        states: list[dict] = []
        _fuzzer().run(self.BUDGET, checkpoint=states.append,
                      stop_after_batches=1)
        resumed = _fuzzer(snapshot_bytes=snapshot).run(
            self.BUDGET, resume=states[-1])
        assert resumed.fingerprint() == full.fingerprint()

    def test_checkpoint_state_pickles(self):
        """The state dict must survive the wire (the store pickles
        it); generators would not."""
        states: list[dict] = []
        _fuzzer().run(300, checkpoint=states.append, stop_after_batches=1)
        blob = pickle.dumps(states[-1])
        state = pickle.loads(blob)
        assert state["version"] == 1
        assert state["execs"] > 0
        assert state["pending"], "pipelined batch must ride the checkpoint"

    def test_checkpoint_version_gate(self):
        states: list[dict] = []
        _fuzzer().run(300, checkpoint=states.append, stop_after_batches=1)
        state = dict(states[-1], version=99)
        with pytest.raises(ValueError, match="checkpoint version"):
            _fuzzer().run(300, resume=state)


# ---------------------------------------------------------------------------
# The persistent store
# ---------------------------------------------------------------------------


class TestCampaignStore:
    def test_corpus_content_addressed_dedup(self, tmp_path):
        store = CampaignStore(tmp_path)
        assert store.add_corpus(b"alpha")
        assert not store.add_corpus(b"alpha")  # cross-run dedup
        assert store.add_corpus(b"beta")
        assert sorted(store.corpus_blobs()) == [b"alpha", b"beta"]

    def test_triage_keyed_by_full_site_keeps_earliest(self, tmp_path):
        store = CampaignStore(tmp_path)
        site = CrashSite("RedZoneFault", 0x1040, 0xBEEF, "heap_redzone")
        other = CrashSite("RedZoneFault", 0x1040, 0xBEEF, "stack_canary")
        added = store.record_crashes([
            TriageRecord(site, b"xx", None, 120),
            TriageRecord(other, b"yy", None, 200),
        ])
        assert added == 2  # first_breach extends the dedup key
        # A later run re-reports the same site with a later reproducer.
        assert store.record_crashes([TriageRecord(site, b"zz", None, 500)]) == 0
        records = store.crash_records()
        assert len(records) == 2
        by_breach = {r.site.first_breach: r for r in records}
        assert by_breach["heap_redzone"].input == b"xx"  # earliest kept
        assert by_breach["heap_redzone"].found_at_exec == 120

    def test_store_round_trip_survives_process_restart(self, tmp_path):
        """Write from this process, read from a fresh interpreter:
        nothing in the store may depend on live objects."""
        store = CampaignStore(tmp_path)
        store.save_meta({"status": "paused", "execs": 64})
        store.save_snapshot(b"RSNP\x01fake-snapshot-bytes")
        store.save_checkpoint({"version": 1, "execs": 64, "pending": [b"a"]})
        store.add_corpus(b"seed-entry")
        store.record_crashes([TriageRecord(
            CrashSite("SegFault", 0x2000, 0x1234, None), b"crash", b"c", 7)])
        store.append_progress({"kind": "campaign_progress", "seq": 64})
        script = (
            "from repro.campaign.store import CampaignStore\n"
            f"s = CampaignStore({str(tmp_path)!r})\n"
            "assert s.load_meta()['execs'] == 64\n"
            "assert s.load_snapshot().startswith(b'RSNP')\n"
            "assert s.load_checkpoint()['pending'] == [b'a']\n"
            "assert s.corpus_blobs() == [b'seed-entry']\n"
            "rec, = s.crash_records()\n"
            "assert rec.site.fault == 'SegFault' and rec.minimized == b'c'\n"
            "assert s.progress_events()[0]['seq'] == 64\n"
            "print('RESTART-OK')\n"
        )
        done = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"})
        assert done.returncode == 0, done.stderr
        assert "RESTART-OK" in done.stdout

    def test_checkpoint_magic_rejected(self, tmp_path):
        store = CampaignStore(tmp_path)
        (tmp_path / "checkpoint.bin").write_bytes(b"garbage")
        with pytest.raises(ValueError, match="not a campaign checkpoint"):
            store.load_checkpoint()
        store.clear_checkpoint()
        assert store.load_checkpoint() is None


# ---------------------------------------------------------------------------
# The coordinator
# ---------------------------------------------------------------------------


class TestCoordinator:
    def _spec(self, job_id="job", **kwargs):
        kwargs.setdefault("victim", "data_only")
        kwargs.setdefault("config", "testing")
        kwargs.setdefault("seed", 3)
        kwargs.setdefault("max_execs", 600)
        return CampaignSpec(job_id=job_id, **kwargs)

    def test_interrupt_resume_converges_to_direct_run(self, tmp_path,
                                                      block_default):
        """The full service path: bounded serve (interrupt), then an
        unbounded serve (resume); the sealed report must carry the
        fingerprint of a direct uninterrupted campaign."""
        direct = _fuzzer().run(600)
        coordinator = CampaignCoordinator(tmp_path, max_batches=1)
        coordinator.submit(self._spec())
        partial = coordinator.serve()["job"]
        assert partial["interrupted"]
        assert coordinator.status()[0].status == "paused"
        final = CampaignCoordinator(tmp_path).serve()["job"]
        assert final["fingerprint"] == direct.fingerprint()
        assert final == report_digest(direct)
        store = coordinator.store_for("job")
        assert store.load_checkpoint() is None  # sealed
        assert store.crash_records(), "triage store must be non-empty"
        assert len(store.corpus_blobs()) == final["corpus_size"]

    def test_serve_is_idempotent_once_done(self, tmp_path):
        coordinator = CampaignCoordinator(tmp_path)
        coordinator.submit(self._spec(max_execs=300))
        first = coordinator.serve()["job"]
        again = CampaignCoordinator(tmp_path).serve()["job"]
        assert again == first

    def test_multiple_jobs_isolated(self, tmp_path):
        """Two jobs drain concurrently into separate stores; each
        matches its own direct run."""
        coordinator = CampaignCoordinator(tmp_path, concurrency=2)
        coordinator.submit(self._spec("a", seed=3, max_execs=300))
        coordinator.submit(self._spec("b", seed=4, max_execs=300))
        reports = coordinator.serve()
        assert set(reports) == {"a", "b"}
        assert reports["a"]["fingerprint"] == _fuzzer(seed=3).run(
            300).fingerprint()
        assert reports["b"]["fingerprint"] == _fuzzer(seed=4).run(
            300).fingerprint()

    def test_submit_validates_spec(self, tmp_path):
        coordinator = CampaignCoordinator(tmp_path)
        with pytest.raises(ValueError, match="unknown victim"):
            coordinator.submit(self._spec(victim="no_such_program"))
        with pytest.raises(ValueError, match="unknown config preset"):
            coordinator.submit(self._spec(config="no_such_preset"))

    def test_progress_stream_is_jsonl(self, tmp_path):
        coordinator = CampaignCoordinator(tmp_path)
        coordinator.submit(self._spec(max_execs=300))
        coordinator.serve()
        lines = (coordinator.store_for("job").root
                 / "progress.jsonl").read_text().splitlines()
        events = [json.loads(line) for line in lines]
        assert events, "every integrated batch streams one event"
        assert all(e["kind"] == "campaign_progress" for e in events)
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs)
        assert events[-1]["unique_crashes"] >= 1


# ---------------------------------------------------------------------------
# The CLI front end
# ---------------------------------------------------------------------------


class TestServiceCLI:
    def test_submit_serve_status_round_trip(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        root = str(tmp_path / "svc")
        assert main(["submit", "--store", root, "--victim", "data_only",
                     "--seed", "3", "--max-execs", "300"]) == 0
        assert main(["serve", "--store", root, "--max-batches", "1"]) == 0
        assert main(["status", "--store", root]) == 0
        out = capsys.readouterr().out
        assert "queued 'data_only-3'" in out
        assert "paused" in out
        assert main(["serve", "--store", root]) == 0
        assert main(["status", "--store", root]) == 0
        out = capsys.readouterr().out
        assert "done execs=300" in out
