"""White-box tests for the basic-block translation cache.

The behavioural guarantee (block mode is observationally identical to
the interpreter) lives in tests/test_differential_blocks.py; this file
pins the *mechanics*: when blocks are built, which events tear them
down, and which configurations opt out of translation entirely.
"""

from __future__ import annotations

import pytest

from repro.isa import Mem, R0, R1, R2, R3, build, encode_many
from repro.machine import Machine, MachineConfig
from repro.machine import machine as machine_module
from repro.machine.memory import PERM_R, PERM_RW, PERM_RWX, PERM_RX
from repro.observe import MetricsCollector

CODE = 0x1000
STACK_BASE = 0x00200000
STACK_TOP = 0x0020F000


def rwx_machine(**config_kwargs) -> Machine:
    # White-box suite: force translation on (explicit config beats the
    # REPRO_BLOCK_CACHE env leg CI runs) unless a test opts out.  The
    # trace tier is pinned off so block mechanics stay observable --
    # installing a trace deliberately drops the loop head's block
    # (tests/test_trace_jit.py covers that hand-off).
    config_kwargs.setdefault("block_cache", True)
    config_kwargs.setdefault("trace_jit", False)
    machine = Machine(MachineConfig(**config_kwargs))
    machine.memory.map_region(CODE, 0x1000, PERM_RWX)
    machine.memory.map_region(STACK_BASE, 0x10000, PERM_RW)
    machine.cpu.ip = CODE
    machine.cpu.sp = STACK_TOP
    return machine


def load(machine: Machine, insns) -> bytes:
    program = encode_many(insns)
    machine.memory.write_bytes(CODE, program)
    return program


HOT_LOOP = [
    build.mov_ri(R0, 0),                # 0x1000
    build.mov_ri(R1, 0),                # 0x1006
    build.add_ri(R0, 3),                # 0x100C  <- loop head
    build.add_ri(R1, 1),                # 0x1012
    build.cmp_ri(R1, 50),               # 0x1018
    build.jnz(0x100C),                  # 0x101E
    build.sys(3),                       # 0x1023
]


class TestPopulation:
    def test_run_builds_blocks(self):
        machine = rwx_machine()
        load(machine, HOT_LOOP)
        result = machine.run()
        assert result.exit_code == 150
        stats = machine.block_cache_stats()
        # One block per distinct head: the program entry, the loop
        # head, and the loop's fall-through exit.
        assert stats["blocks"] == 3
        assert stats["pages"] == 1
        assert set(machine._block_cache) == {0x1000, 0x100C, 0x1023}

    def test_blocks_are_reused_not_rebuilt(self):
        machine = rwx_machine()
        load(machine, HOT_LOOP)
        machine.run()
        before = dict(machine._block_cache)
        machine.cpu.ip = CODE
        machine.run()
        # The same closure objects serve the second run.
        assert all(machine._block_cache[head] is block
                   for head, block in before.items())

    def test_block_metadata(self):
        machine = rwx_machine()
        load(machine, HOT_LOOP)
        machine.run()
        entry = machine._block_cache[0x1000]
        # Entry block: straight-line prefix ends at the conditional
        # branch (a control transfer always terminates a block).
        assert entry.head == 0x1000
        assert entry.page == 1
        assert entry.count == 6
        loop = machine._block_cache[0x100C]
        assert loop.count == 4

    def test_single_step_never_translates(self):
        machine = rwx_machine()
        load(machine, HOT_LOOP)
        for _ in range(10):
            machine.step()
        assert machine.block_cache_stats()["blocks"] == 0


class TestInvalidation:
    def test_guest_write_to_block_page_invalidates(self):
        machine = rwx_machine()
        load(machine, HOT_LOOP)
        machine.run()
        assert machine.block_cache_stats()["blocks"] == 3
        epoch = machine.block_cache_stats()["epoch"]
        machine.write_word(CODE + 0x800, 0x90909090)
        stats = machine.block_cache_stats()
        assert stats["blocks"] == 0
        assert stats["epoch"] == epoch + 1

    def test_raw_memory_write_invalidates(self):
        machine = rwx_machine()
        load(machine, HOT_LOOP)
        machine.run()
        machine.memory.write_bytes(CODE, b"\x00")
        assert machine.block_cache_stats()["blocks"] == 0

    def test_write_to_unrelated_page_keeps_blocks(self):
        machine = rwx_machine()
        load(machine, HOT_LOOP)
        machine.run()
        machine.memory.write_bytes(STACK_BASE, b"\x41" * 64)
        assert machine.block_cache_stats()["blocks"] == 3

    def test_set_perms_flushes(self):
        machine = rwx_machine()
        load(machine, HOT_LOOP)
        machine.run()
        machine.memory.set_perms(CODE, 0x1000, PERM_RX)
        assert machine.block_cache_stats()["blocks"] == 0

    def test_pma_registration_flushes(self):
        from repro.pma.module import ProtectedModule

        machine = rwx_machine()
        load(machine, HOT_LOOP)
        machine.memory.map_region(0x00300000, 0x2000, PERM_RX)
        machine.run()
        assert machine.block_cache_stats()["blocks"] == 3
        machine.pma.register(ProtectedModule(
            name="m", text_start=0x00300000, text_end=0x00300010,
            data_start=0x00301000, data_end=0x00301010,
            entry_points=frozenset({0x00300000})), b"\x00" * 16)
        # Registration changes fetch semantics machine-wide; cached
        # closures compiled without PMA checks must not survive.
        assert machine.block_cache_stats()["blocks"] == 0

    def test_flush_decode_cache_drops_blocks_too(self):
        machine = rwx_machine()
        load(machine, HOT_LOOP)
        machine.run()
        epoch = machine.block_cache_stats()["epoch"]
        machine.flush_decode_cache()
        stats = machine.block_cache_stats()
        assert stats["blocks"] == 0
        assert stats["pages"] == 0
        assert stats["epoch"] == epoch + 1


class TestOptOut:
    def test_config_disables_translation(self):
        machine = rwx_machine(block_cache=False)
        load(machine, HOT_LOOP)
        result = machine.run()
        assert result.exit_code == 150
        assert machine.block_cache_stats()["blocks"] == 0

    def test_env_var_disables_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BLOCK_CACHE", "0")
        assert MachineConfig().block_cache is False
        monkeypatch.setenv("REPRO_BLOCK_CACHE", "1")
        assert MachineConfig().block_cache is True
        monkeypatch.delenv("REPRO_BLOCK_CACHE")
        assert MachineConfig().block_cache is machine_module.BLOCK_CACHE_DEFAULT

    def test_observed_machine_falls_back_to_interpreter(self):
        machine = rwx_machine()
        load(machine, HOT_LOOP)
        machine.attach_observer(MetricsCollector())
        result = machine.run()
        assert result.exit_code == 150
        # Observers need per-instruction events; the dispatcher must
        # never enter a translated block while any are attached.
        assert machine.block_cache_stats()["blocks"] == 0

    def test_detaching_observer_restores_translation(self):
        machine = rwx_machine()
        load(machine, HOT_LOOP)
        collector = machine.attach_observer(MetricsCollector())
        machine.run()
        machine.detach_observer(collector)
        machine.cpu.ip = CODE
        machine.run()
        assert machine.block_cache_stats()["blocks"] > 0


class TestTranslationLimits:
    def test_non_executable_head_is_not_translated(self):
        machine = rwx_machine()
        load(machine, HOT_LOOP)
        machine.memory.map_region(0x00400000, 0x1000, PERM_RW)
        assert machine._translate_block(0x00400000) is None

    def test_unmapped_head_is_not_translated(self):
        machine = rwx_machine()
        assert machine._translate_block(0x7FFF0000) is None

    def test_undecodable_head_is_not_translated(self):
        machine = rwx_machine()
        machine.memory.write_bytes(CODE, b"\xff\xff")
        assert machine._translate_block(CODE) is None

    def test_blocks_stop_at_page_boundary(self):
        machine = rwx_machine()
        machine.memory.map_region(0x2000, 0x1000, PERM_RWX)
        # nops to the page edge, then a sys on the next page.
        tail = encode_many([build.sys(3)])
        machine.memory.write_bytes(CODE, b"\x00" * 0x1000)
        machine.memory.write_bytes(0x2000, tail)
        machine.run()
        for block in machine._block_cache.values():
            assert block.page in (1, 2)
            # No block spans pages: every block's last byte stays on
            # its head page.
            assert block.head >> 12 == block.page
