"""Differential testing: the trace JIT vs blocks vs the interpreter.

The trace tier compounds every way a translator can diverge: registers
cached in locals, flags computed lazily, memory accesses folded to
direct page writes behind loop-top guards, whole iterations retired in
one closure.  Every scenario here runs *three* times -- trace dispatch,
block-only dispatch, and the per-instruction interpreter -- and
asserts all three end states are byte-identical: status, exit code,
fault type and message, instruction counts, output, the register file,
IP, flags, and raw memory.

The directed cases aim at the trace tier's specific seams: a store
that patches a chained successor mid-run, permissions flipped between
chained blocks, snapshot/restore while a trace is installed, loops
whose trip count leaves the trace mid-iteration on every exit kind,
and hypothesis-generated loop programs heavy on the addressing
patterns the compiler folds (stack discipline, base+offset arrays).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.isa import Mem, R0, R1, R2, R3, build, encode_many
from repro.machine import Machine, MachineConfig, RunResult

from tests.test_differential_blocks import (
    CODE,
    DATA,
    STACK_BASE,
    STACK_TOP,
    SEED_REGS,
    _SLOT,
    _assemble,
    summarize,
)
from repro.machine.memory import PERM_R, PERM_RW, PERM_RWX

#: (block_cache, trace_jit) per leg.
LEGS = {"interp": (False, False), "block": (True, False),
        "trace": (True, True)}


def fresh_machine(leg: str, hot: int = 4) -> Machine:
    block, trace = LEGS[leg]
    machine = Machine(MachineConfig(block_cache=block, trace_jit=trace,
                                    trace_hot_threshold=hot))
    machine.memory.map_region(CODE, 0x1000, PERM_RWX)
    machine.memory.map_region(DATA, 0x1000, PERM_RW)
    machine.memory.map_region(STACK_BASE, 0x10000, PERM_RW)
    machine.cpu.ip = CODE
    machine.cpu.regs[:] = SEED_REGS
    return machine


def state_of(machine: Machine, result: RunResult) -> tuple:
    return (
        summarize(result),
        tuple(machine.cpu.regs),
        machine.cpu.ip,
        (machine.cpu.zf, machine.cpu.lt, machine.cpu.ult),
        machine.current_ip,
        machine.instructions_executed,
        machine.memory.read_bytes(CODE, 0x1000),
        machine.memory.read_bytes(DATA, 0x1000),
        machine.memory.read_bytes(STACK_TOP - 0x400, 0x400),
    )


def run_leg(program: bytes, leg: str, max_instructions: int = 3_000,
            hot: int = 4) -> tuple:
    machine = fresh_machine(leg, hot)
    machine.memory.write_bytes(CODE, program)
    result = machine.run(max_instructions=max_instructions)
    return state_of(machine, result)


def assert_identical(program: bytes, max_instructions: int = 3_000,
                     hot: int = 4) -> tuple:
    traced = run_leg(program, "trace", max_instructions, hot)
    blocked = run_leg(program, "block", max_instructions, hot)
    stepped = run_leg(program, "interp", max_instructions, hot)
    assert traced == blocked == stepped
    return traced


def counting_loop(body, iterations=40, counter=R2):
    """A hot loop wrapping ``body``; exits with sys(3)."""
    head = CODE + 6
    insns = [build.mov_ri(counter, 0)]
    insns += body
    insns += [
        build.add_ri(counter, 1),
        build.cmp_ri(counter, iterations),
        build.jnz(head),
        build.sys(3),
    ]
    return encode_many(insns)


# -- hypothesis fuzz ---------------------------------------------------------

#: Loop bodies biased toward what the trace compiler optimises:
#: base+offset memory traffic (r3 is seeded with a DATA pointer) and
#: stack discipline.  Destinations stay in r0/r1 so the loop counter
#: (r2) usually survives; when a pop clobbers r3 the body faults --
#: fault parity is part of the contract.
_BODY_INSN = st.one_of(
    st.builds(build.load, st.integers(0, 1),
              st.builds(Mem, st.just(3), st.sampled_from([0, 4, 8]))),
    st.builds(build.store, st.integers(0, 1),
              st.builds(Mem, st.just(3), st.sampled_from([0, 4, 8]))),
    st.builds(build.storeb, st.integers(0, 1),
              st.builds(Mem, st.just(3), st.sampled_from([0, 5]))),
    st.builds(build.push, st.integers(0, 1)),
    st.builds(build.pop, st.integers(0, 1)),
    st.builds(build.add_rr, st.integers(0, 1), st.integers(0, 3)),
    st.builds(build.add_ri, st.integers(0, 1),
              st.sampled_from([1, 4, 0x7FFFFFFF, 0xFFFFFFFF])),
    st.builds(build.cmp_ri, st.integers(0, 1),
              st.sampled_from([0, 1, 0x80000000])),
    st.builds(build.mov_ri, st.integers(0, 1),
              st.sampled_from([0, 7, DATA + 0x800])),
    st.builds(build.shl, st.integers(0, 1), st.integers(0, 3)),
)


class TestFuzzedLoops:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(_BODY_INSN, min_size=0, max_size=10),
           st.integers(2, 50))
    def test_random_loop_identical(self, body, iterations):
        # Unbalanced push/pop bodies walk the stack pointer a little
        # further every iteration -- exactly the case where a trace's
        # per-base page guard must eventually bounce.
        program = counting_loop(body, iterations)
        assert_identical(program, max_instructions=4_000)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(_SLOT, min_size=1, max_size=40))
    def test_random_program_identical(self, slots):
        # The block suite's generator, rerun with the trace tier armed
        # and an aggressive hotness threshold.
        assert_identical(_assemble(slots))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(_BODY_INSN, min_size=0, max_size=8),
           st.integers(1, 120))
    def test_random_loop_identical_under_budget(self, body, budget):
        # Budgets that strike mid-iteration: the trace must retire
        # exactly the interpreter's count and leave the identical
        # architectural state.
        program = counting_loop(body, iterations=30)
        assert_identical(program, max_instructions=budget)


# -- directed adversarial cases ----------------------------------------------

class TestSelfModification:
    def test_store_patches_chained_successor(self):
        # Satellite case (a): a hot loop whose body patches the bytes
        # of the *chained successor* block (the loop tail) mid-run.
        # The store invalidates translations for the code page; a
        # stale chained block or trace would keep adding 1.
        patched = encode_many([build.add_ri(R0, 2)])
        patch_word = int.from_bytes(patched[0:4], "little")

        def layout(addrs):
            return [
                build.mov_ri(R0, 0),
                build.mov_ri(R3, 0),
                build.add_ri(R3, 1),              # index 2 <- loop head
                build.mov_ri(R1, addrs.get(8, 0)),
                build.cmp_ri(R3, 10),
                build.jnz(addrs.get(8, 0)),       # skip store until hot
                build.mov_ri(R2, patch_word),
                build.store(R2, Mem(R1, 0)),      # patches the add
                build.add_ri(R0, 1),              # index 8 <- target
                build.cmp_ri(R3, 30),
                build.jnz(addrs.get(2, 0)),
                build.sys(3),
            ]

        addrs, addr = {}, CODE
        for index, insn in enumerate(layout({})):
            addrs[index] = addr
            addr += len(encode_many([insn]))
        full = encode_many(layout(addrs))
        state = assert_identical(full)
        # Iterations 1-9 run the add unpatched (+1); the store fires
        # on iteration 10, so it and the remaining 20 add 2.
        assert state[0][1] == 9 * 1 + 21 * 2

    def test_trace_page_store_inside_traced_loop(self):
        # The loop body itself stores to its own code page (at a spot
        # that never becomes an executed instruction).  Every such
        # store invalidates the page's translations, so the loop can
        # never stay traced -- yet results must stay identical.
        scratch = CODE + 0x800
        body = [
            build.mov_ri(R1, scratch),
            build.store(R3, Mem(R1, 0)),
        ]
        assert_identical(counting_loop(body, 25), max_instructions=4_000)


class TestPermissionFlips:
    def test_perm_flip_between_chained_blocks(self):
        # Satellite case (b): the loop reads a data page each
        # iteration; mid-run the program flips that page read-only via
        # a store fault handler... the VN32 has no guest API to flip
        # perms, so the flip comes from the host side between runs:
        # run hot (trace installed over the load), flip perms, rerun.
        # The trace's loop-top guard must bounce and the fault must
        # surface exactly as the interpreter's.
        body = [
            build.mov_ri(R1, DATA),
            build.store(R3, Mem(R1, 0)),
            build.load(R0, Mem(R1, 0)),
        ]
        program = counting_loop(body, 30)
        states = {}
        for leg in ("trace", "block", "interp"):
            machine = fresh_machine(leg)
            machine.memory.write_bytes(CODE, program)
            first = machine.run(max_instructions=3_000)
            assert first.fault is None
            # Flip the data page read-only and rerun the same loop.
            machine.memory.set_perms(DATA, 0x1000, PERM_R)
            machine.cpu.ip = CODE
            machine.cpu.regs[:] = SEED_REGS
            states[leg] = state_of(
                machine, machine.run(max_instructions=3_000))
        assert states["trace"] == states["block"] == states["interp"]
        assert states["trace"][0][2] == "PermissionFault"

    def test_all_perms_revoked_under_installed_trace(self):
        body = [
            build.mov_ri(R1, DATA),
            build.store(R3, Mem(R1, 0)),
        ]
        program = counting_loop(body, 30)
        states = {}
        for leg in ("trace", "block", "interp"):
            machine = fresh_machine(leg)
            machine.memory.write_bytes(CODE, program)
            assert machine.run(max_instructions=3_000).fault is None
            machine.memory.set_perms(DATA, 0x1000, 0)
            machine.cpu.ip = CODE
            machine.cpu.regs[:] = SEED_REGS
            states[leg] = state_of(
                machine, machine.run(max_instructions=3_000))
        assert states["trace"] == states["block"] == states["interp"]
        assert states["trace"][0][2] == "PermissionFault"


class TestSnapshotRestore:
    def test_snapshot_restore_mid_trace(self):
        # Satellite case (c): snapshot while a trace is installed and
        # the machine is parked mid-loop, mutate, restore, resume.
        # All three legs must agree after the resumed run.
        body = [
            build.mov_ri(R1, DATA),
            build.load(R2, Mem(R1, 4)),
            build.add_rr(R0, R2),
            build.store(R0, Mem(R1, 4)),
        ]
        program = counting_loop(body, 40)
        states = {}
        for leg in ("trace", "block", "interp"):
            machine = fresh_machine(leg)
            machine.memory.write_bytes(CODE, program)
            # Park mid-loop: the budget lands inside an iteration.
            partial = machine.run(max_instructions=100)
            assert partial.fault is not None
            snap = machine.snapshot()
            # Diverge, then restore back to the parked state.
            machine.run(max_instructions=50)
            machine.restore(snap)
            states[leg] = state_of(
                machine, machine.run(max_instructions=3_000))
        assert states["trace"] == states["block"] == states["interp"]


class TestProgramShapes:
    def test_nested_loops(self):
        inner_head = CODE + 0x12
        outer_head = CODE + 0x0C
        program = encode_many([
            build.mov_ri(R0, 0),             # 0x1000
            build.mov_ri(R1, 0),             # 0x1006
            build.mov_ri(R2, 0),             # 0x100C  <- outer head
            build.add_ri(R0, 1),             # 0x1012  <- inner head
            build.add_ri(R2, 1),             # 0x1018
            build.cmp_ri(R2, 7),             # 0x101E
            build.jnz(inner_head),           # 0x1024
            build.add_ri(R1, 1),             # 0x1029
            build.cmp_ri(R1, 9),             # 0x102F
            build.jnz(outer_head),           # 0x1035
            build.sys(3),                    # 0x103A
        ])
        state = assert_identical(program, max_instructions=4_000)
        assert state[0][1] == 63             # 7 * 9 inner iterations

    def test_loop_with_call_in_body(self):
        # Leaf calls are inlined into the trace through the shadowable
        # push/pop helpers; the return address discipline must match.
        func = CODE + 0x100
        body = [build.call_abs(func)]
        program = bytearray(counting_loop(body, 30))
        leaf = encode_many([
            build.add_ri(R0, 5),
            build.ret(),
        ])
        program[func - CODE:func - CODE + len(leaf)] = leaf
        assert_identical(bytes(program), max_instructions=4_000)

    def test_loop_over_byte_array(self):
        body = [
            build.mov_ri(R1, DATA + 0x20),
            build.loadb(R2, Mem(R1, 3)),
            build.add_ri(R2, 1),
            build.storeb(R2, Mem(R1, 3)),
        ]
        state = assert_identical(counting_loop(body, 40),
                                 max_instructions=4_000)

    def test_division_fault_mid_trace(self):
        # r2 counts down to zero; div r0, r2 faults on the final
        # iteration *inside* the hot trace.
        head = CODE + 0x0C
        program = encode_many([
            build.mov_ri(R0, 1000),          # 0x1000
            build.mov_ri(R2, 20),            # 0x1006
            build.sub_ri(R2, 1),             # 0x100C  <- loop head
            build.div_rr(R0, R2),            # 0x1012
            build.cmp_ri(R2, 0),             # 0x1015
            build.jnz(head),                 # 0x101B
            build.sys(3),                    # 0x1020
        ])
        state = assert_identical(program)
        assert state[0][2] == "DivisionFault"

    def test_alternating_branch_directions(self):
        # The loop's inner branch flips by parity: whichever direction
        # got recorded, half the iterations must leave through the
        # trace's branch-guard exit.  Two-pass layout: lengths first,
        # then targets.
        def layout(make):
            insns = make({})
            addrs, addr = {}, CODE
            for index, insn in enumerate(insns):
                addrs[index] = addr
                addr += len(encode_many([insn]))
            return encode_many(make(addrs))

        def make(addrs):
            return [
                build.mov_ri(R0, 0),
                build.mov_ri(R3, 0),
                build.mov_rr(R1, R3),        # index 2 <- loop head
                build.mov_ri(R2, 1),
                build.and_rr(R1, R2),
                build.cmp_ri(R1, 0),
                build.jnz(addrs.get(8, 0)),  # odd: skip the add
                build.add_ri(R0, 3),
                build.add_ri(R3, 1),         # index 8
                build.cmp_ri(R3, 24),
                build.jnz(addrs.get(2, 0)),
                build.sys(3),
            ]

        state = assert_identical(layout(make), max_instructions=4_000)
        assert state[0][1] == 36             # 12 even iterations * 3

    def test_hot_threshold_one(self):
        # Degenerate config: every loop head traces on first sight.
        body = [build.add_ri(R0, 2)]
        assert_identical(counting_loop(body, 10), hot=1)
