"""Tests for the PMA crypto, attestation, sealing, and continuity."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import (
    AttestationError,
    ContinuityLivenessError,
    RollbackError,
    SealingError,
)
from repro.pma import crypto
from repro.pma.attestation import ProvisioningAuthority, RemoteVerifier
from repro.pma.continuity import (
    IceStyleScheme,
    MemoirStyleScheme,
    SimulatedCrash,
)
from repro.pma.sealing import SealedStorage


class TestCrypto:
    def test_measure_deterministic(self):
        assert crypto.measure(b"code") == crypto.measure(b"code")
        assert crypto.measure(b"code") != crypto.measure(b"code2")

    def test_key_derivation_binds_both_inputs(self):
        m = crypto.measure(b"code")
        assert (crypto.derive_module_key(b"k1", m)
                != crypto.derive_module_key(b"k2", m))
        assert (crypto.derive_module_key(b"k1", m)
                != crypto.derive_module_key(b"k1", crypto.measure(b"other")))

    @given(st.binary(max_size=200), st.binary(min_size=16, max_size=16))
    def test_seal_open_roundtrip(self, plaintext, iv):
        key = b"\x11" * 32
        blob = crypto.seal_blob(key, iv, plaintext)
        assert crypto.open_blob(key, blob) == plaintext

    @given(st.binary(max_size=64), st.integers(min_value=0))
    def test_bitflip_detected(self, plaintext, position):
        key = b"\x11" * 32
        blob = bytearray(crypto.seal_blob(key, b"\x01" * 16, plaintext))
        blob[position % len(blob)] ^= 0x80
        with pytest.raises(SealingError):
            crypto.open_blob(key, bytes(blob))

    def test_wrong_key_rejected(self):
        blob = crypto.seal_blob(b"\x11" * 32, b"\x01" * 16, b"data")
        with pytest.raises(SealingError):
            crypto.open_blob(b"\x22" * 32, blob)

    def test_aad_binds_context(self):
        key = b"\x11" * 32
        blob = crypto.seal_blob(key, b"\x01" * 16, b"data", aad=b"ctr=1")
        assert crypto.open_blob(key, blob, aad=b"ctr=1") == b"data"
        with pytest.raises(SealingError):
            crypto.open_blob(key, blob, aad=b"ctr=2")

    def test_ciphertext_hides_plaintext(self):
        blob = crypto.seal_blob(b"\x11" * 32, b"\x01" * 16, b"SECRET-PIN-1234")
        assert b"SECRET-PIN-1234" not in blob

    def test_short_blob_rejected(self):
        with pytest.raises(SealingError):
            crypto.open_blob(b"\x11" * 32, b"short")

    def test_bad_iv_length_rejected(self):
        with pytest.raises(SealingError):
            crypto.seal_blob(b"\x11" * 32, b"short", b"data")


class TestAttestationProtocol:
    def setup_method(self):
        self.authority = ProvisioningAuthority(b"\x05" * 32)
        self.code = b"genuine module code"
        self.module_key = self.authority.expected_module_key(self.code)

    def _report(self, key, nonce):
        return crypto.mac(key, b"attest" + nonce)

    def test_genuine_report_verifies(self):
        verifier = RemoteVerifier(self.module_key)
        nonce = verifier.challenge()
        assert verifier.verify(nonce, self._report(self.module_key, nonce))

    def test_tampered_module_fails(self):
        verifier = RemoteVerifier(self.module_key)
        nonce = verifier.challenge()
        bad_key = self.authority.expected_module_key(b"tampered code")
        assert not verifier.verify(nonce, self._report(bad_key, nonce))

    def test_unknown_nonce_rejected(self):
        verifier = RemoteVerifier(self.module_key)
        nonce = b"\x00" * 16
        assert not verifier.verify(nonce, self._report(self.module_key, nonce))

    def test_nonce_single_use(self):
        verifier = RemoteVerifier(self.module_key)
        nonce = verifier.challenge()
        report = self._report(self.module_key, nonce)
        assert verifier.verify(nonce, report)
        assert not verifier.verify(nonce, report)

    def test_require_raises(self):
        verifier = RemoteVerifier(self.module_key)
        nonce = verifier.challenge()
        with pytest.raises(AttestationError):
            verifier.require(nonce, b"\x00" * 32)


class TestSealedStorage:
    def test_int_record_roundtrip(self):
        storage = SealedStorage(b"\x0a" * 32)
        blob = storage.seal_ints(3, 17)
        assert storage.unseal_ints(blob, 2) == (3, 17)

    def test_wrong_count_rejected(self):
        storage = SealedStorage(b"\x0a" * 32)
        blob = storage.seal_ints(3)
        with pytest.raises(SealingError):
            storage.unseal_ints(blob, 2)

    def test_distinct_ivs_distinct_blobs(self):
        storage = SealedStorage(b"\x0a" * 32)
        assert storage.seal(b"x") != storage.seal(b"x")


@pytest.mark.parametrize("scheme_cls", [MemoirStyleScheme, IceStyleScheme])
class TestContinuityCommon:
    def make(self, scheme_cls):
        return scheme_cls(SealedStorage(b"\x0c" * 32))

    def test_clean_update_recovers_latest(self, scheme_cls):
        scheme = self.make(scheme_cls)
        scheme.update(1)
        scheme.update(2)
        assert scheme.recover() == 2

    def test_replay_rejected(self, scheme_cls):
        scheme = self.make(scheme_cls)
        scheme.update(1)
        scheme.update(2)
        scheme.disk.replay(0)
        with pytest.raises(RollbackError):
            scheme.recover()

    def test_forged_blob_rejected(self, scheme_cls):
        scheme = self.make(scheme_cls)
        scheme.update(1)
        scheme.disk.store(b"\x00" * 80)
        with pytest.raises(RollbackError):
            scheme.recover()

    def test_first_boot_empty_disk(self, scheme_cls):
        scheme = self.make(scheme_cls)
        with pytest.raises(RollbackError):
            scheme.recover()

    def test_wiped_disk_after_use_is_not_first_boot(self, scheme_cls):
        scheme = self.make(scheme_cls)
        scheme.update(1)
        scheme.disk.blob = None
        with pytest.raises(ContinuityLivenessError):
            scheme.recover()


class TestContinuityDivergence:
    """Where the two schemes differ: the crash window."""

    def test_memoir_deadlocks_on_crash_between_increment_and_write(self):
        scheme = MemoirStyleScheme(SealedStorage(b"\x0c" * 32))
        scheme.update(1)
        with pytest.raises(SimulatedCrash):
            scheme.update(2, crash_after="increment")
        with pytest.raises(RollbackError):
            scheme.recover()  # the stored state is now forever stale

    def test_ice_survives_every_crash_point(self):
        for crash_after in ("write", "increment"):
            scheme = IceStyleScheme(SealedStorage(b"\x0c" * 32))
            scheme.update(1)
            with pytest.raises(SimulatedCrash):
                scheme.update(2, crash_after=crash_after)
            assert scheme.recover() == 2

    def test_ice_recovery_completes_the_increment(self):
        scheme = IceStyleScheme(SealedStorage(b"\x0c" * 32))
        scheme.update(1)
        with pytest.raises(SimulatedCrash):
            scheme.update(2, crash_after="write")
        before = scheme.counter.read()
        scheme.recover()
        assert scheme.counter.read() == before + 1
        # And the replayed *old* state is still rejected afterwards.
        scheme.disk.replay(0)
        with pytest.raises(RollbackError):
            scheme.recover()

    @given(st.lists(st.sampled_from([None, "write", "increment"]), min_size=1,
                    max_size=8))
    def test_ice_liveness_invariant(self, crash_plan):
        """Property: whatever interleaving of updates and crashes
        happens, Ice-style recovery always succeeds and never yields a
        state older than the last *completed* update."""
        scheme = IceStyleScheme(SealedStorage(b"\x0c" * 32))
        scheme.update(0)
        last_completed = 0
        last_attempted = 0
        for step, crash_after in enumerate(crash_plan, start=1):
            try:
                scheme.update(step, crash_after=crash_after)
                last_completed = step
            except SimulatedCrash:
                pass
            last_attempted = step
            recovered = scheme.recover()
            assert recovered >= last_completed
            assert recovered <= last_attempted
