"""White-box tests for the tier-2 trace JIT (repro.machine.trace).

Behavioural identity with the interpreter lives in
tests/test_differential_trace.py; this file pins the mechanics: when
traces are recorded and installed, which events tear them down, which
machines refuse to trace, and that the dispatcher's hand-off between
the block tier and the trace tier stays exact.
"""

from __future__ import annotations

import pytest

from repro.errors import ExecutionLimitExceeded
from repro.isa import Mem, R0, R1, R2, R3, build, encode_many
from repro.machine import Machine, MachineConfig
from repro.machine import machine as machine_module
from repro.machine.memory import PERM_RW, PERM_RWX
from repro.observe import MetricsCollector

CODE = 0x1000
STACK_BASE = 0x00200000
STACK_TOP = 0x0020F000

LOOP_HEAD = 0x100C

#: 50 iterations: far past the default hotness threshold of 20.
HOT_LOOP = [
    build.mov_ri(R0, 0),                # 0x1000
    build.mov_ri(R1, 0),                # 0x1006
    build.add_ri(R0, 3),                # 0x100C  <- loop head
    build.add_ri(R1, 1),                # 0x1012
    build.cmp_ri(R1, 50),               # 0x1018
    build.jnz(LOOP_HEAD),               # 0x101E
    build.sys(3),                       # 0x1023
]


def traced_machine(**config_kwargs) -> Machine:
    config_kwargs.setdefault("block_cache", True)
    config_kwargs.setdefault("trace_jit", True)
    machine = Machine(MachineConfig(**config_kwargs))
    machine.memory.map_region(CODE, 0x1000, PERM_RWX)
    machine.memory.map_region(STACK_BASE, 0x10000, PERM_RW)
    machine.cpu.ip = CODE
    machine.cpu.sp = STACK_TOP
    return machine


def load(machine: Machine, insns) -> bytes:
    program = encode_many(insns)
    machine.memory.write_bytes(CODE, program)
    return program


def run_hot(machine: Machine):
    load(machine, HOT_LOOP)
    result = machine.run()
    assert result.exit_code == 150
    return result


class TestInstallation:
    def test_hot_loop_installs_a_trace(self):
        machine = traced_machine()
        run_hot(machine)
        stats = machine.trace_cache_stats()
        assert stats["traces"] == 1
        assert stats["failed"] == 0
        assert LOOP_HEAD in machine._trace_cache

    def test_trace_metadata(self):
        machine = traced_machine()
        run_hot(machine)
        trace = machine._trace_cache[LOOP_HEAD]
        assert trace.head == LOOP_HEAD
        assert trace.pages == (CODE >> 12,)
        assert trace.count == 4            # add, add, cmp, jnz
        assert "def _trace" in trace.source

    def test_trace_supersedes_loop_head_block(self):
        machine = traced_machine()
        run_hot(machine)
        # Installing the trace evicts the loop head's block and nulls
        # chain cells pointing at it, so block dispatch cannot bypass
        # the trace.
        assert LOOP_HEAD not in machine._block_cache
        for cell in machine._chain_registry.get(LOOP_HEAD, ()):
            assert cell[0] is None

    def test_cold_loop_never_traces(self):
        machine = traced_machine(trace_hot_threshold=1000)
        run_hot(machine)
        assert machine.trace_cache_stats()["traces"] == 0

    def test_trace_is_reused_across_runs(self):
        machine = traced_machine()
        run_hot(machine)
        trace = machine._trace_cache[LOOP_HEAD]
        machine.cpu.ip = CODE
        machine.run()
        assert machine._trace_cache[LOOP_HEAD] is trace


class TestRefusals:
    def test_config_disables_tracing(self):
        machine = traced_machine(trace_jit=False)
        run_hot(machine)
        assert machine.trace_cache_stats()["traces"] == 0

    def test_env_var_flips_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert MachineConfig().trace_jit is False
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert MachineConfig().trace_jit is True
        monkeypatch.delenv("REPRO_TRACE")
        assert MachineConfig().trace_jit is machine_module.TRACE_JIT_DEFAULT

    def test_interpreter_mode_never_traces(self):
        machine = traced_machine(block_cache=False)
        run_hot(machine)
        assert machine.trace_cache_stats()["traces"] == 0

    def test_observed_machine_never_traces(self):
        machine = traced_machine()
        load(machine, HOT_LOOP)
        machine.attach_observer(MetricsCollector())
        result = machine.run()
        assert result.exit_code == 150
        assert machine.trace_cache_stats()["traces"] == 0

    def test_pma_machine_blacklists_instead_of_tracing(self):
        from repro.pma.module import ProtectedModule

        machine = traced_machine()
        machine.memory.map_region(0x00300000, 0x2000, PERM_RWX)
        machine.pma.register(ProtectedModule(
            name="m", text_start=0x00300000, text_end=0x00300010,
            data_start=0x00301000, data_end=0x00301010,
            entry_points=frozenset({0x00300000})), b"\x00" * 16)
        run_hot(machine)
        stats = machine.trace_cache_stats()
        assert stats["traces"] == 0
        assert stats["failed"] >= 1

    def test_loop_through_syscall_is_blacklisted_once(self):
        # print_int syscall inside the loop: recording always reaches
        # SYS and aborts.  The head lands on the failed list so the
        # recorder is not re-entered every iteration afterwards.
        loop = [
            build.mov_ri(R1, 0),            # 0x1000
            build.mov_ri(R0, 0),            # 0x1006  <- loop head
            build.sys(6),                   # 0x100C  (print_int)
            build.add_ri(R1, 1),            # 0x1011
            build.cmp_ri(R1, 50),           # 0x1017
            build.jnz(0x1006),              # 0x101D
            build.sys(3),                   # 0x1022
        ]
        machine = traced_machine()
        load(machine, loop)
        machine.run()
        assert machine.trace_cache_stats()["traces"] == 0
        assert 0x1006 in machine._trace_failed


class TestInvalidation:
    def test_guest_store_to_trace_page_drops_trace(self):
        machine = traced_machine()
        run_hot(machine)
        epoch = machine._block_epoch
        program = encode_many([
            build.mov_ri(R1, CODE + 0x800),
            build.mov_ri(R2, 0x99),
            build.storeb(R2, Mem(R1, 0)),
            build.sys(3),
        ])
        machine.memory.write_bytes(CODE + 0x400, program)
        machine.cpu.ip = CODE + 0x400
        machine.run()
        assert machine.trace_cache_stats()["traces"] == 0
        assert machine._block_epoch > epoch

    def test_raw_memory_write_drops_trace(self):
        machine = traced_machine()
        run_hot(machine)
        machine.memory.write_bytes(LOOP_HEAD, b"\x00")
        assert machine.trace_cache_stats()["traces"] == 0

    def test_invalidation_also_clears_hotness_counters(self):
        machine = traced_machine()
        run_hot(machine)
        machine.memory.write_bytes(LOOP_HEAD, b"\x00")
        assert all(head >> 12 != CODE >> 12
                   for head in machine._trace_counts)

    def test_flush_decode_cache_drops_traces(self):
        machine = traced_machine()
        run_hot(machine)
        machine.flush_decode_cache()
        stats = machine.trace_cache_stats()
        assert stats["traces"] == 0 and stats["pages"] == 0

    def test_set_perms_drops_traces(self):
        machine = traced_machine()
        run_hot(machine)
        machine.memory.set_perms(CODE, 0x1000, PERM_RWX)
        assert machine.trace_cache_stats()["traces"] == 0

    def test_rerun_after_invalidation_retraces(self):
        machine = traced_machine()
        run_hot(machine)
        machine.memory.write_bytes(CODE, encode_many(HOT_LOOP))
        assert machine.trace_cache_stats()["traces"] == 0
        machine.cpu.ip = CODE
        machine.run()
        assert machine.trace_cache_stats()["traces"] == 1


class TestBudgetExactness:
    def exhaust(self, budget, **config_kwargs):
        machine = traced_machine(**config_kwargs)
        load(machine, HOT_LOOP)
        result = machine.run(max_instructions=budget)
        assert isinstance(result.fault, ExecutionLimitExceeded)
        return machine.instructions_executed, machine.cpu.ip

    @pytest.mark.parametrize("budget", [21, 100, 150, 151, 152, 199])
    def test_limit_lands_on_interpreter_instruction(self, budget):
        # Budgets chosen to exhaust while the trace is looping: the
        # trace must retire exactly the interpreter's count and park
        # the IP on the same instruction.
        traced = self.exhaust(budget)
        stepped = self.exhaust(budget, block_cache=False)
        assert traced == stepped
        assert traced[0] == budget
