"""Differential testing: generated MinC programs vs a Python oracle.

Hypothesis generates small expression trees and straight-line programs;
each is compiled, run on the machine, and compared against direct
Python evaluation with C semantics.  This is the deepest correctness
net over the whole pipeline (parser -> sema -> codegen -> assembler ->
linker -> loader -> CPU).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine import RunStatus
from tests.conftest import run_c


def _wrap(value: int) -> int:
    """C int semantics: wrap to signed 32-bit."""
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value >= 0x80000000 else value


def _c_div(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return _wrap(-q if (a < 0) != (b < 0) else q)


def _c_mod(a: int, b: int) -> int:
    r = abs(a) % abs(b)
    return _wrap(-r if a < 0 else r)


# --- expression trees -------------------------------------------------------

_SAFE_BINOPS = ["+", "-", "*", "&", "|", "^", "<", ">", "<=", ">=", "==", "!="]


@st.composite
def expr_trees(draw, depth=3):
    """An (expression-text, python-value) pair."""
    if depth == 0 or draw(st.booleans()):
        value = draw(st.integers(-500, 500))
        return (f"({value})", value)
    op = draw(st.sampled_from(_SAFE_BINOPS + ["/", "%"]))
    left_text, left_value = draw(expr_trees(depth=depth - 1))
    right_text, right_value = draw(expr_trees(depth=depth - 1))
    if op in ("/", "%") and right_value == 0:
        op = "+"
    if op == "+":
        value = _wrap(left_value + right_value)
    elif op == "-":
        value = _wrap(left_value - right_value)
    elif op == "*":
        value = _wrap(left_value * right_value)
    elif op == "/":
        value = _c_div(left_value, right_value)
    elif op == "%":
        value = _c_mod(left_value, right_value)
    elif op == "&":
        value = _wrap((left_value & 0xFFFFFFFF) & (right_value & 0xFFFFFFFF))
    elif op == "|":
        value = _wrap((left_value & 0xFFFFFFFF) | (right_value & 0xFFFFFFFF))
    elif op == "^":
        value = _wrap((left_value & 0xFFFFFFFF) ^ (right_value & 0xFFFFFFFF))
    else:
        value = int({
            "<": left_value < right_value,
            ">": left_value > right_value,
            "<=": left_value <= right_value,
            ">=": left_value >= right_value,
            "==": left_value == right_value,
            "!=": left_value != right_value,
        }[op])
    return (f"({left_text} {op} {right_text})", value)


class TestExpressionDifferential:
    @settings(max_examples=80, deadline=None)
    @given(expr_trees())
    def test_expression_matches_oracle(self, tree):
        text, expected = tree
        result = run_c(f"void main() {{ print_int({text}); }}")
        assert result.status is RunStatus.EXITED
        assert int(result.output) == expected

    @settings(max_examples=40, deadline=None)
    @given(expr_trees(), st.booleans())
    def test_optimizer_agrees(self, tree, use_canary):
        """The peephole optimizer and the canary pass must not change
        expression values."""
        from repro.minic import CompileOptions

        text, expected = tree
        options = CompileOptions(optimize=True, stack_canaries=use_canary)
        from repro.mitigations import CANARY, NONE

        result = run_c(f"void main() {{ print_int({text}); }}",
                       config=CANARY if use_canary else NONE, options=options)
        assert int(result.output) == expected


# --- straight-line variable programs ------------------------------------------


@st.composite
def variable_programs(draw, steps=6):
    """A program mutating three variables; oracle runs the same steps."""
    env = {"a": draw(st.integers(-100, 100)),
           "b": draw(st.integers(-100, 100)),
           "c": draw(st.integers(-100, 100))}
    lines = [f"    int {name} = {value};" for name, value in env.items()]
    for _ in range(steps):
        target = draw(st.sampled_from(list(env)))
        source_a = draw(st.sampled_from(list(env)))
        source_b = draw(st.sampled_from(list(env)))
        op = draw(st.sampled_from(["+", "-", "*"]))
        lines.append(f"    {target} = {source_a} {op} {source_b};")
        env[target] = _wrap({
            "+": env[source_a] + env[source_b],
            "-": env[source_a] - env[source_b],
            "*": env[source_a] * env[source_b],
        }[op])
    lines.append("    print_int(a); print_int(b); print_int(c);")
    body = "\n".join(lines)
    return (f"void main() {{\n{body}\n}}", [env["a"], env["b"], env["c"]])


class TestProgramDifferential:
    @settings(max_examples=40, deadline=None)
    @given(variable_programs())
    def test_program_matches_oracle(self, pair):
        source, expected = pair
        result = run_c(source)
        assert result.status is RunStatus.EXITED
        assert [int(x) for x in result.output.split()] == expected

    @settings(max_examples=25, deadline=None)
    @given(variable_programs())
    def test_optimizer_preserves_programs(self, pair):
        from repro.minic import CompileOptions

        source, expected = pair
        result = run_c(source, options=CompileOptions(optimize=True))
        assert [int(x) for x in result.output.split()] == expected


# --- array/loop programs ---------------------------------------------------------


@st.composite
def array_programs(draw):
    """Fill an array with a pattern, fold it, compare against Python."""
    size = draw(st.integers(2, 12))
    scale = draw(st.integers(-5, 5))
    offset = draw(st.integers(-10, 10))
    values = [_wrap(scale * i + offset) for i in range(size)]
    source = f"""
void main() {{
    int a[{size}];
    int i;
    for (i = 0; i < {size}; i++) {{
        a[i] = {scale} * i + {offset};
    }}
    int total = 0;
    for (i = 0; i < {size}; i++) {{
        total += a[i];
    }}
    print_int(total);
}}
"""
    return (source, _wrap(sum(values)))


class TestArrayDifferential:
    @settings(max_examples=30, deadline=None)
    @given(array_programs())
    def test_array_fold_matches_oracle(self, pair):
        source, expected = pair
        result = run_c(source)
        assert int(result.output) == expected

    @settings(max_examples=20, deadline=None)
    @given(array_programs())
    def test_bounds_checked_build_agrees(self, pair):
        """Safe-mode bounds checks must be semantics-preserving on
        in-bounds programs."""
        from repro.minic import CompileOptions

        source, expected = pair
        result = run_c(source, options=CompileOptions(bounds_checks=True))
        assert result.status is RunStatus.EXITED
        assert int(result.output) == expected
