"""Tests for the coverage-guided greybox fuzzer (and the blind
fuzzer's shared fork-server plumbing).

Four proof obligations:

* **determinism** -- same seed + same input => identical coverage
  bitmap, on both dispatch legs (block cache on and off), and across
  snapshot restores;
* **non-perturbation** -- an instrumented run is byte-identical to an
  unobserved run of the same input (the observe layer's zero-cost
  contract extended to the fuzzer's harness);
* **triage** -- crashes deduplicate on (fault type, faulting PC,
  call-stack hash) and minimization preserves the signature;
* **effectiveness** -- the acceptance criterion: greybox finds the
  staged Figure 1 overflow under TESTING in fewer executions than
  blind random fuzzing ever does within the same budget.
"""

from __future__ import annotations

import pickle

import pytest

import repro.machine.machine as machine_module
from repro.analysis.greybox import (
    ExecOutcome,
    GreyboxFuzzer,
    SnapshotExecutor,
    VictimFactory,
    minimize_input,
    outcome_of,
)
from repro.analysis.fuzzer import _random_input, compare_detection, fuzz_campaign
from repro.machine.machine import RunStatus
from repro.mitigations.config import NONE, TESTING
from repro.observe.coverage import (
    MAP_SIZE,
    CoverageObserver,
    CrashSite,
    SharedVirginMap,
    bucket_mask,
    edge_index,
    has_new_bits,
    pack_edges,
    stack_hash,
    unpack_edges,
)
from tests.test_differential_cache import summarize

#: A crashing input for the staged Figure 1 victim: the "GET" method
#: gate plus enough payload to cross buf[16]'s red zone.
GET_SMASH = b"GET " + b"A" * 32


def instrumented_executor(name: str, config, *, block_cache: bool = True):
    observer = CoverageObserver()
    executor = SnapshotExecutor(VictimFactory(name, config),
                                observer=observer)
    executor.machine.config.block_cache = block_cache
    return executor, observer


# ---------------------------------------------------------------------------
# Coverage map mechanics
# ---------------------------------------------------------------------------


class TestCoverageMap:
    def test_edge_index_deterministic_and_bounded(self):
        assert edge_index(0x1000, 0x2000, 1) == edge_index(0x1000, 0x2000, 1)
        assert edge_index(0x1000, 0x2000, 1) != edge_index(0x2000, 0x1000, 1)
        assert edge_index(0x1000, 0x2000, 1) != edge_index(0x1000, 0x2000, 2)
        assert all(0 <= edge_index(s, t, 3) < MAP_SIZE
                   for s in range(0, 4096, 37) for t in range(0, 4096, 41))

    def test_bucket_mask_afl_buckets(self):
        assert bucket_mask(1) == 1
        assert bucket_mask(2) == 2
        assert bucket_mask(3) == 4
        assert bucket_mask(4) == bucket_mask(7) == 8
        assert bucket_mask(8) == bucket_mask(15) == 16
        assert bucket_mask(16) == bucket_mask(31) == 32
        assert bucket_mask(32) == bucket_mask(127) == 64
        assert bucket_mask(128) == bucket_mask(255) == 128

    def test_stack_hash_order_sensitive(self):
        assert stack_hash([1, 2]) != stack_hash([2, 1])
        assert stack_hash([]) == stack_hash(())
        assert stack_hash((0x1000, 0x2000)) == stack_hash([0x1000, 0x2000])

    def test_has_new_bits_accumulates(self):
        virgin = bytearray(MAP_SIZE)
        assert has_new_bits(virgin, ((5, 1), (9, 2)))
        assert not has_new_bits(virgin, ((5, 1),))          # seen
        assert has_new_bits(virgin, ((5, 2),))              # new bucket
        assert not has_new_bits(virgin, ((5, 3), (9, 2)))   # union of seen


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------


class TestCoverageDeterminism:
    @pytest.mark.parametrize("block_cache", [True, False])
    def test_same_input_same_bitmap_across_restores(self, block_cache):
        executor, observer = instrumented_executor(
            "fig1_staged", TESTING, block_cache=block_cache)
        executor.run(GET_SMASH)
        first = (observer.snapshot_counts(), observer.edge_items(),
                 observer.crash_site)
        executor.run(b"unrelated")          # dirty the map in between
        executor.run(GET_SMASH)
        second = (observer.snapshot_counts(), observer.edge_items(),
                  observer.crash_site)
        assert first == second

    def test_bitmap_identical_across_block_cache_legs(self):
        items = []
        for block_cache in (True, False):
            executor, observer = instrumented_executor(
                "fig1_staged", TESTING, block_cache=block_cache)
            executor.run(GET_SMASH)
            items.append((observer.snapshot_counts(), observer.edge_items(),
                          observer.crash_site))
        assert items[0] == items[1]

    def test_campaign_deterministic_by_seed(self):
        reports = [
            GreyboxFuzzer(VictimFactory("data_only", TESTING),
                          seed=11).run(max_execs=200)
            for _ in range(2)
        ]
        first, second = reports
        assert first.execs == second.execs
        assert first.edges == second.edges
        assert first.corpus_size == second.corpus_size
        assert first.coverage_curve == second.coverage_curve
        assert first.first_detected_exec == second.first_detected_exec
        assert ([c.site for c in first.crashes]
                == [c.site for c in second.crashes])
        assert ([c.reproducer for c in first.crashes]
                == [c.reproducer for c in second.crashes])


# ---------------------------------------------------------------------------
# Non-perturbation: instrumentation must not change the run
# ---------------------------------------------------------------------------


class TestDifferential:
    @pytest.mark.parametrize("data", [b"", b"GET", GET_SMASH, b"A" * 64])
    def test_instrumented_run_identical_to_unobserved(self, data):
        executor, _ = instrumented_executor("fig1_staged", TESTING)
        instrumented = executor.run(data)

        program = VictimFactory("fig1_staged", TESTING)()
        program.feed(data)
        plain = program.run()
        assert summarize(instrumented) == summarize(plain)

    def test_blind_campaign_unchanged_by_fork_server(self):
        """The hoisted one-build executor reproduces the per-input
        rebuild semantics: same seed => same classification counts."""
        report = fuzz_campaign("data_only", TESTING, runs=80, seed=5)
        assert report.silent_class > 0
        assert report.detected_silent == report.silent_class
        assert "RedZoneFault" in report.faults

    def test_blind_campaign_reuses_one_executor(self):
        executor = SnapshotExecutor(VictimFactory("data_only", TESTING))
        report = fuzz_campaign("data_only", TESTING, runs=40, seed=5,
                               executor=executor)
        assert executor.execs == report.runs == 40
        # Same executor, same seed: identical campaign.
        rerun = fuzz_campaign("data_only", TESTING, runs=40, seed=5,
                              executor=executor)
        assert rerun.detected == report.detected
        assert rerun.faults == report.faults


# ---------------------------------------------------------------------------
# Legacy fuzzer regressions (the two satellite bugfixes)
# ---------------------------------------------------------------------------


class TestBlindFuzzerRegressions:
    def test_random_input_reaches_max_len(self):
        """Off-by-one regression: randrange's exclusive bound used to
        cap inputs at max_len - 1 bytes."""
        import random

        rng = random.Random(0)
        lengths = {len(_random_input(rng, 16)) for _ in range(2000)}
        assert max(lengths) == 16
        assert min(lengths) == 0

    def test_compare_detection_forwards_smashes_at(self):
        """compare_detection used to drop smashes_at, so any victim
        with a non-default frame layout got the default class split."""
        default = compare_detection("data_only", runs=60, seed=9)
        shifted = compare_detection("data_only", runs=60, seed=9,
                                    smashes_at=40)
        direct = fuzz_campaign("data_only", TESTING, runs=60, seed=9,
                               smashes_at=40)
        assert shifted["asan"].silent_class == direct.silent_class
        assert shifted["asan"].smashing_class == direct.smashing_class
        # The shifted boundary reclassifies inputs in [21, 40).
        assert (shifted["asan"].silent_class
                > default["asan"].silent_class)
        assert (shifted["asan"].smashing_class
                < default["asan"].smashing_class)


class TestGreyboxRegressions:
    def test_havoc_ops_guard_empty_input(self):
        """Every byte-indexed havoc op must skip a zero-length buffer:
        ``rng.randrange(0)`` raises ValueError, and truncation/delete
        ops routinely produce empty intermediates mid-stack."""
        fuzzer = GreyboxFuzzer(VictimFactory("data_only", TESTING), seed=11)
        for _ in range(3000):
            mutant = fuzzer._havoc_one(b"")
            assert len(mutant) <= fuzzer.max_len
        # max_len=0 forces *every* op's output back to empty, so each
        # mutation round re-enters the guards with len(out) == 0.
        fuzzer.max_len = 0
        assert all(fuzzer._havoc_one(b"") == b"" for _ in range(500))

    def test_campaign_from_empty_seed(self):
        """A campaign seeded with only b'' must run to its exec budget
        (deterministic length extensions grow the corpus from nothing)
        instead of dying in the havoc stage."""
        report = GreyboxFuzzer(VictimFactory("data_only", TESTING),
                               seed=3, seeds=(b"",), program="data_only",
                               config="testing").run(400, minimize=False)
        assert report.execs == 400
        assert report.corpus_size >= 1
        assert report.edges > 0


# ---------------------------------------------------------------------------
# Crash triage
# ---------------------------------------------------------------------------


class TestCrashTriage:
    def test_same_bug_same_site(self):
        executor, observer = instrumented_executor("fig1_staged", TESTING)
        sites = []
        for data in (GET_SMASH, b"GET " + b"B" * 40, b"GETX" + b"C" * 25):
            result = executor.run(data)
            assert result.status is RunStatus.FAULT
            sites.append(outcome_of(observer, result).crash_site)
        assert sites[0] is not None
        assert len(set(sites)) == 1     # one bucket for one bug

    def test_different_faults_different_sites(self):
        executor, observer = instrumented_executor("fig1_staged", TESTING)
        smash = outcome_of(observer, executor.run(GET_SMASH)).crash_site

        other_exec, other_obs = instrumented_executor("data_only", TESTING)
        other = outcome_of(other_obs, other_exec.run(b"Z" * 40)).crash_site
        assert smash != other

    def test_sites_are_hashable_dedup_keys(self):
        a = CrashSite("RedZoneFault", 0x1000, 123)
        b = CrashSite("RedZoneFault", 0x1000, 123)
        c = CrashSite("RedZoneFault", 0x1004, 123)
        assert len({a, b, c}) == 2

    def test_minimize_keeps_signature_and_shrinks(self):
        executor, observer = instrumented_executor("fig1_staged", TESTING)

        def run_outcome(data):
            return outcome_of(observer, executor.run(data))

        original = b"GET " + b"A" * 60
        site = run_outcome(original).crash_site
        assert site is not None
        minimized, used = minimize_input(run_outcome, original, site)
        assert used > 0
        assert len(minimized) < len(original)
        assert run_outcome(minimized).crash_site == site
        # Cannot shrink past the method gate + red-zone reach.
        assert minimized.startswith(b"GET")
        assert len(minimized) >= 21


# ---------------------------------------------------------------------------
# Effectiveness (the acceptance criterion) + CI smoke
# ---------------------------------------------------------------------------


class TestEffectiveness:
    def test_fig1_smoke_greybox_beats_blind(self):
        """CI fuzz smoke: small budget, fixed seed, the greybox loop
        must find the staged Figure 1 overflow under TESTING while
        blind random fuzzing finds nothing in the same budget."""
        budget = 2500
        factory = VictimFactory("fig1_staged", TESTING)
        grey = GreyboxFuzzer(factory, seed=7, program="fig1_staged",
                             config="TESTING").run(
            budget, stop_on_first_crash=True)
        assert grey.first_detected_exec is not None
        assert grey.unique_crashes >= 1
        assert all(c.site.fault == "RedZoneFault" for c in grey.crashes)

        blind = fuzz_campaign("fig1_staged", TESTING, runs=budget, seed=7,
                              executor=SnapshotExecutor(factory))
        assert (blind.first_detected_exec is None
                or blind.first_detected_exec > grey.first_detected_exec)

    def test_data_only_detected_quickly(self):
        """The shallow overflow: the deterministic length-extension
        stage reaches it within the first corpus cycle."""
        report = GreyboxFuzzer(VictimFactory("data_only", TESTING),
                               seed=3).run(200, stop_on_first_crash=True)
        assert report.first_detected_exec is not None
        assert report.first_detected_exec <= 50
        assert report.crashes[0].site.fault == "RedZoneFault"

    def test_coverage_curve_monotonic(self):
        report = GreyboxFuzzer(VictimFactory("fig1_staged", TESTING),
                               seed=7).run(800)
        execs = [e for e, _ in report.coverage_curve]
        edges = [c for _, c in report.coverage_curve]
        assert execs == sorted(execs)
        assert edges == sorted(edges)
        assert report.edges >= edges[-1]

    def test_parallel_matches_sequential(self):
        """jobs > 1 fans batches over CampaignRunner workers; corpus
        decisions and crash triage must not depend on the fan-out."""
        results = []
        for jobs in (None, 2):
            report = GreyboxFuzzer(
                VictimFactory("fig1_staged", TESTING), seed=5, jobs=jobs,
            ).run(max_execs=400, minimize=False)
            results.append((
                report.execs, report.edges, report.corpus_size,
                report.coverage_curve, report.first_detected_exec,
                [c.site for c in report.crashes],
                [c.input for c in report.crashes],
            ))
        assert results[0] == results[1]


# ---------------------------------------------------------------------------
# Wire compatibility + the shared virgin map
# ---------------------------------------------------------------------------


@pytest.fixture(params=[True, False], ids=["blocks", "stepped"])
def block_default(request):
    """Run the parallel determinism proof under both dispatch legs
    (workers inherit the module default through the pool initargs)."""
    previous = machine_module.BLOCK_CACHE_DEFAULT
    machine_module.BLOCK_CACHE_DEFAULT = request.param
    try:
        yield request.param
    finally:
        machine_module.BLOCK_CACHE_DEFAULT = previous


class TestWireCompat:
    def test_pack_unpack_round_trip(self):
        edges = ((0, 1), (5, 128), (4095, 64), (300, 3))
        blob = pack_edges(edges)
        assert len(blob) == 3 * len(edges)
        assert unpack_edges(blob) == edges
        assert pack_edges(()) == b""
        assert unpack_edges(b"") == ()

    def test_old_tuple_edges_pickle_still_loads(self):
        """PR 5-era ExecOutcome pickles carried edges as a
        tuple-of-tuples; they must still load and integrate."""
        old = ExecOutcome(status="fault", fault="RedZoneFault",
                          edges=((5, 1), (9, 2)),
                          crash_site=CrashSite("RedZoneFault", 0x1000, 7),
                          instructions=44)
        back = pickle.loads(pickle.dumps(old))
        assert back.edge_items() == ((5, 1), (9, 2))
        assert back.is_detection
        virgin = bytearray(MAP_SIZE)
        assert has_new_bits(virgin, back.edge_items())

    def test_packed_and_tuple_outcomes_integrate_identically(self):
        items = ((5, 1), (9, 2), (700, 8))
        packed = ExecOutcome("exited", None, pack_edges(items), None, 10)
        legacy = ExecOutcome("exited", None, items, None, 10)
        assert packed.edge_items() == legacy.edge_items()

    def test_three_field_crash_site_fixture(self):
        """Old CrashSite pickles (pre-first_breach) construct and
        compare exactly as before."""
        site = CrashSite("RedZoneFault", 0x1000, 123)
        assert site.first_breach is None
        assert site == pickle.loads(pickle.dumps(site))
        assert site == CrashSite("RedZoneFault", 0x1000, 123, None)

    def test_packed_blob_is_compact(self):
        executor, observer = instrumented_executor("fig1_staged", TESTING)
        result = executor.run(GET_SMASH)
        outcome = outcome_of(observer, result)
        assert isinstance(outcome.edges, bytes)
        assert len(outcome.edges) == 3 * len(outcome.edge_items())
        tuple_pickle = pickle.dumps(outcome.edge_items())
        assert len(pickle.dumps(outcome.edges)) < len(tuple_pickle)


class TestSharedVirginMap:
    def test_publish_attach_snapshot(self):
        shared = SharedVirginMap.create()
        try:
            virgin = bytearray(MAP_SIZE)
            virgin[7] = 3
            virgin[4095] = 128
            shared.publish(virgin)
            worker = SharedVirginMap.attach(shared.name)
            try:
                assert worker.snapshot() == bytes(virgin)
                local = bytearray(MAP_SIZE)
                local[9] = 1
                worker.merge_into(local)
                assert local[7] == 3 and local[9] == 1 and local[4095] == 128
            finally:
                worker.close()
        finally:
            shared.close()

    def test_overlay_filters_repeat_coverage(self):
        """A run whose every bucket is already in the worker overlay
        ships an empty edge blob; a novel run ships the full set."""
        executor, observer = instrumented_executor("fig1_staged", TESTING)
        local = bytearray(MAP_SIZE)
        first = outcome_of(observer, executor.run(b"GET x"),
                           local_virgin=local)
        assert first.edges != b""
        repeat = outcome_of(observer, executor.run(b"GET x"),
                            local_virgin=local)
        assert repeat.edges == b""
        assert repeat.edge_items() == ()
        # The rejected-method path takes branches the GET path never
        # did: locally novel, so the full edge set ships.
        novel = outcome_of(observer, executor.run(b"PUT x"),
                           local_virgin=local)
        assert novel.edges != b""

    def test_filtered_crash_keeps_its_site(self):
        """Novelty filtering must never swallow a crash signature."""
        executor, observer = instrumented_executor("fig1_staged", TESTING)
        local = bytearray(MAP_SIZE)
        outcome_of(observer, executor.run(GET_SMASH), local_virgin=local)
        repeat = outcome_of(observer, executor.run(GET_SMASH),
                            local_virgin=local)
        assert repeat.edges == b""
        assert repeat.crash_site is not None
        assert repeat.is_detection

    def test_parallel_matches_sequential_both_legs(self, block_default):
        """The shared-virgin-map + pipelined path must stay
        report-identical to sequential under either dispatch leg."""
        results = []
        for jobs in (None, 2):
            report = GreyboxFuzzer(
                VictimFactory("fig1_staged", TESTING), seed=5, jobs=jobs,
            ).run(max_execs=300, minimize=False)
            results.append((
                report.execs, report.edges, report.corpus_size,
                report.coverage_curve, report.first_detected_exec,
                [c.site for c in report.crashes],
                [c.input for c in report.crashes],
            ))
        assert results[0] == results[1]
