"""Tests for the attacker's reconnaissance helpers."""

import pytest

from repro.attacks.study import locate_overflow, run_until_syscall
from repro.machine import RunStatus, syscalls
from repro.mitigations import CANARY, NONE
from repro.programs import build_fig1, build_victim


class TestRunUntilSyscall:
    def test_stops_at_first_read(self):
        program = build_fig1()
        program.feed(b"irrelevant")
        machine = run_until_syscall(program, syscalls.SYS_READ)
        # We are inside get_request, about to read into process's buf.
        assert machine.cpu.regs[2] == 32  # the buggy length

    def test_occurrence_counting(self):
        from repro.attacks.payloads import p32

        program = build_victim("arbitrary_write")
        program.feed(p32(1) + p32(0) + p32(7))
        machine = run_until_syscall(program, syscalls.SYS_READ, occurrence=3)
        assert machine.input.remaining == 4  # two ints consumed

    def test_resume_re_executes_the_syscall(self):
        program = build_fig1()
        program.feed(b"RESUME-TEST-1234")
        run_until_syscall(program, syscalls.SYS_READ)
        result = program.run()
        assert result.status is RunStatus.EXITED
        assert result.output.startswith(b"RESUME-TEST-1234")

    def test_never_reached_raises(self):
        program = build_fig1()
        program.feed(b"x" * 16)
        with pytest.raises(RuntimeError, match="never reached"):
            run_until_syscall(program, syscalls.SYS_ATTEST)


class TestLocateOverflow:
    def test_fig1_geometry(self):
        site = locate_overflow(build_fig1(), frames_up=1)
        # process(): buf[16] directly below saved bp; ret slot 4 above.
        assert site.saved_bp_addr - site.buffer_addr == 16
        assert site.offset_to_return == 20

    def test_canary_shifts_geometry(self):
        site = locate_overflow(build_fig1(CANARY), frames_up=1)
        # One extra word (the canary) between buf and the saved bp.
        assert site.offset_to_return == 24

    def test_original_return_points_into_text(self):
        program = build_fig1()
        site = locate_overflow(program, frames_up=1)
        text = program.image.segment_named("text")
        assert text.addr <= site.original_return < text.end

    def test_frames_up_zero_is_reading_frame(self):
        program = build_victim("rop_exfil")
        site = locate_overflow(program)
        assert site.offset_to_return == 20  # serve()'s own frame
