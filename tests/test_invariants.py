"""Tests for the always-on security-invariant monitors.

Proof obligations:

* **attribution** -- each attack class breaks the invariant that names
  it: stack smashes break return-integrity, code corruption breaks
  W^X, data-only and heartbleed break object-bounds, PMA abuses break
  entry-point discipline and register confidentiality, rollbacks break
  counter freshness;
* **precision** -- clean runs breach nothing, and exemptions (entry
  points, entry-time register values, canary re-arming) hold;
* **lifecycle** -- snapshot restore resets per-run breach state but
  keeps the counter high-water mark; attach+detach restores the
  machine's ``_observers is None`` fast path on both block-cache legs;
* **wiring** -- breaches surface in MetricsCollector, EventTrace,
  the Chrome exporter, the E4 matrix and the fuzzer's crash sites,
  and :class:`CrashSite` stays compatible with three-field callers.
"""

from __future__ import annotations

import pickle

import pytest

from repro.machine import Machine, MachineConfig
from repro.mitigations.config import CANARY, NONE, TESTING, MitigationConfig
from repro.observe import (
    EventTrace,
    InvariantBreach,
    InvariantMonitor,
    MetricsCollector,
    chrome_trace_events,
    observe_new_machines,
)
from repro.observe.coverage import CrashSite
from repro.pma.module import ProtectedModule
from tests.conftest import c_program, run_c


def monitored(fn, *args, **kwargs):
    """Run an attack pipeline with a monitor on every machine it
    builds; returns (result, monitors in construction order)."""
    monitors: list[InvariantMonitor] = []

    def factory(machine):
        monitor = InvariantMonitor()
        monitors.append(monitor)
        return monitor

    with observe_new_machines(factory):
        result = fn(*args, **kwargs)
    return result, monitors


def victim_breach(monitors) -> InvariantBreach | None:
    """First breach of the last machine whose timeline is non-empty."""
    for monitor in reversed(monitors):
        if monitor.first_breach is not None:
            return monitor.first_breach
    return None


def hooked_machine() -> tuple[Machine, InvariantMonitor]:
    machine = Machine(MachineConfig())
    monitor = InvariantMonitor()
    machine.attach_observer(monitor)
    return machine, monitor


# ---------------------------------------------------------------------------
# The breach record
# ---------------------------------------------------------------------------


class TestBreachRecord:
    def test_label_and_where(self):
        breach = InvariantBreach("canary", 0, 0x8048044, "clobbered")
        assert breach.where == "0x08048044"
        assert breach.label() == "canary@0x08048044"

    def test_ipless_breach_renders_placeholder(self):
        breach = InvariantBreach("counter-freshness", 0, None, "rolled back")
        assert breach.where == "?"
        assert breach.label() == "counter-freshness@?"

    def test_picklable_for_campaign_workers(self):
        breach = InvariantBreach("return-integrity", 1, 0x1000, "mismatch",
                                 pre=0x2000, post=0x3000,
                                 call_stack=(0x10, 0x20))
        assert pickle.loads(pickle.dumps(breach)) == breach


# ---------------------------------------------------------------------------
# Per-invariant checks through direct hook invocation
# ---------------------------------------------------------------------------


class TestReturnIntegrity:
    def test_mismatched_ret_breaches_with_pre_post(self):
        machine, monitor = hooked_machine()
        monitor.on_call(machine, 0x1000, 0x2000, 0x1005, False)
        monitor.on_ret(machine, 0x2004, 0x3333)
        breach = monitor.first_breach
        assert breach is not None
        assert breach.invariant == "return-integrity"
        assert breach.ip == 0x2004
        assert breach.pre == 0x1005
        assert breach.post == 0x3333

    def test_matched_ret_is_clean(self):
        machine, monitor = hooked_machine()
        monitor.on_call(machine, 0x1000, 0x2000, 0x1005, False)
        monitor.on_ret(machine, 0x2004, 0x1005)
        assert monitor.first_breach is None

    def test_breach_records_guest_call_stack(self):
        machine, monitor = hooked_machine()
        monitor.on_call(machine, 0x1000, 0x2000, 0x1005, False)
        monitor.on_call(machine, 0x2000, 0x4000, 0x2005, False)
        monitor.on_ret(machine, 0x4004, 0x9999)
        # The breaching frame is popped first; the record keeps the
        # surrounding caller context.
        assert monitor.first_breach.call_stack == (0x1005,)


class TestWX:
    def test_write_then_execute_is_wx_exec(self):
        machine, monitor = hooked_machine()
        monitor.on_write(machine, 0x20F000, 4, 0xDEAD)
        monitor.on_jump(machine, 0x1000, 0x20F000, True)
        breach = monitor.first_breach
        assert breach.invariant == "wx-exec"
        assert breach.ip == 0x1000

    def test_execute_then_write_is_wx_write(self):
        machine, monitor = hooked_machine()
        monitor.on_jump(machine, 0x1000, 0x1100, False)
        monitor.on_write(machine, 0x1104, 4, 0xDEAD)
        assert monitor.first_breach.invariant == "wx-write"

    def test_wx_reported_once_per_page(self):
        machine, monitor = hooked_machine()
        monitor.on_jump(machine, 0x1000, 0x1100, False)
        for addr in (0x1104, 0x1108, 0x110C):
            monitor.on_write(machine, addr, 4, 0)
        assert monitor.counts["wx-write"] == 1

    def test_disjoint_pages_are_clean(self):
        machine, monitor = hooked_machine()
        monitor.on_jump(machine, 0x1000, 0x1100, False)
        monitor.on_write(machine, 0x20F000, 4, 0)
        assert monitor.first_breach is None


class TestPMAConfidentiality:
    def _module(self) -> ProtectedModule:
        return ProtectedModule(
            name="vault", text_start=0x30000000, text_end=0x30001000,
            data_start=0x30001000, data_end=0x30002000,
            entry_points=frozenset({0x30000000}),
        )

    def test_internal_pointer_in_register_leaks(self):
        machine, monitor = hooked_machine()
        module = self._module()
        monitor.on_pma_enter(machine, module, 0x30000000)
        machine.cpu.regs[2] = 0x30001040       # module-internal data ptr
        monitor.on_pma_exit(machine, module, 0x1005)
        breach = monitor.first_breach
        assert breach.invariant == "pma-confidentiality"
        assert "r2=0x30001040" in breach.detail

    def test_entry_point_and_entry_time_values_exempt(self):
        machine, monitor = hooked_machine()
        module = self._module()
        machine.cpu.regs[3] = 0x30001040       # caller arrived with it
        monitor.on_pma_enter(machine, module, 0x30000000)
        machine.cpu.regs[4] = 0x30000000       # public entry point
        monitor.on_pma_exit(machine, module, 0x1005)
        assert monitor.first_breach is None


class TestCounterFreshness:
    def _machine_with_module(self):
        machine, monitor = hooked_machine()
        module = ProtectedModule(
            name="pinpad", text_start=0x30000000, text_end=0x30001000,
            data_start=0x30001000, data_end=0x30002000,
            entry_points=frozenset({0x30000000}),
        )
        machine.pma.register(module, b"\x00" * 16)
        return machine, monitor, module

    def test_restore_below_highwater_is_rollback(self):
        machine, monitor, module = self._machine_with_module()
        stale = machine.snapshot()             # counter = 0
        machine.pma.counter_increment(module)
        machine.snapshot()                     # samples high water = 1
        machine.restore(stale)                 # rewinds counter to 0
        breach = monitor.first_breach
        assert breach is not None
        assert breach.invariant == "counter-freshness"
        assert breach.ip is None
        assert (breach.pre, breach.post) == (1, 0)

    def test_restore_at_highwater_is_fresh(self):
        machine, monitor, module = self._machine_with_module()
        machine.pma.counter_increment(module)
        snap = machine.snapshot()
        machine.restore(snap)
        assert monitor.first_breach is None


# ---------------------------------------------------------------------------
# End-to-end attribution through real attack pipelines
# ---------------------------------------------------------------------------


class TestAttackAttribution:
    def test_stack_smash_breaks_return_integrity(self):
        from repro.attacks.io_attacks import attack_stack_smash_injection

        result, monitors = monitored(attack_stack_smash_injection, NONE)
        assert result.succeeded
        assert victim_breach(monitors).invariant == "return-integrity"

    def test_canary_clobber_attributed_before_detection(self):
        from repro.attacks.io_attacks import attack_stack_smash_injection

        result, monitors = monitored(attack_stack_smash_injection, CANARY)
        assert not result.succeeded
        assert victim_breach(monitors).invariant == "canary"

    def test_code_corruption_breaks_wx(self):
        from repro.attacks.io_attacks import attack_code_corruption

        result, monitors = monitored(attack_code_corruption, NONE)
        assert result.succeeded
        assert victim_breach(monitors).invariant == "wx-write"

    def test_data_only_breaks_object_bounds(self):
        from repro.attacks.io_attacks import attack_data_only

        result, monitors = monitored(attack_data_only, NONE)
        assert result.succeeded
        assert victim_breach(monitors).invariant == "object-bounds"

    def test_heartbleed_overread_breaks_object_bounds(self):
        from repro.attacks.io_attacks import attack_heartbleed

        result, monitors = monitored(attack_heartbleed, NONE)
        assert result.succeeded
        breach = victim_breach(monitors)
        assert breach.invariant == "object-bounds"
        assert "read" in breach.detail

    def test_midmodule_call_breaks_pma_entry(self):
        from repro.attacks.pma_exploit import attack_direct_midmodule_call

        result, monitors = monitored(attack_direct_midmodule_call)
        assert victim_breach(monitors).invariant == "pma-entry"

    def test_register_residue_breaks_pma_confidentiality(self):
        from repro.attacks.machinecode import attack_register_residue

        result, monitors = monitored(
            attack_register_residue, protected=True, secure=False)
        assert result.succeeded
        assert victim_breach(monitors).invariant == "pma-confidentiality"

    def test_secure_compilation_leaves_no_breach(self):
        from repro.attacks.machinecode import attack_register_residue

        result, monitors = monitored(
            attack_register_residue, protected=True, secure=True)
        assert not result.succeeded
        assert victim_breach(monitors) is None

    def test_redzone_touch_attributed(self):
        monitor = InvariantMonitor()
        with observe_new_machines(lambda machine: monitor):
            result = run_c(
                """
void main() {
    int a[4];
    int i;
    for (i = 0; i <= 4; i++) { a[i] = i; }
    print_int(a[0]);
}
""",
                config=MitigationConfig(asan=True),
            )
        assert result.fault is not None
        assert monitor.first_breach.invariant == "red-zone"

    def test_clean_program_breaches_nothing(self):
        monitor = InvariantMonitor()
        with observe_new_machines(lambda machine: monitor):
            result = run_c(
                """
int add(int a, int b) { return a + b; }
void main() { print_int(add(20, 22)); }
""",
                config=CANARY,
            )
        assert result.exit_code == 0
        assert monitor.total_breaches() == 0
        assert monitor.report()["first_breach"] is None


# ---------------------------------------------------------------------------
# Link-time metadata delivery
# ---------------------------------------------------------------------------


class TestBindProgram:
    def test_loader_delivers_frame_tables_and_canary(self):
        monitor = InvariantMonitor()
        with observe_new_machines(lambda machine: monitor):
            program = c_program(
                """
void main() { int buf[4]; buf[0] = 1; print_int(buf[0]); }
""",
                config=CANARY,
            )
        assert monitor._frame_tables
        entry_locals = monitor._frame_tables[
            program.image.symbol("test:main")]
        assert any(name == "buf" and size == 16
                   for name, _offset, size in entry_locals)
        assert monitor._canary_value != 0

    def test_unbound_monitor_still_runs(self):
        machine, monitor = hooked_machine()
        monitor.on_write(machine, 0x20F000, 64, b"\x00" * 64)
        assert monitor.first_breach is None   # bounds checks inert

    def test_global_symbol_intervals_cover_data(self):
        monitor = InvariantMonitor()
        with observe_new_machines(lambda machine: monitor):
            c_program(
                """
int table[4];
int sentinel;
void main() { table[0] = 1; print_int(table[0]); }
""")
        assert monitor._global_starts
        assert len(monitor._global_starts) == len(monitor._global_ends)
        assert all(end > start for start, end
                   in zip(monitor._global_starts, monitor._global_ends))


# ---------------------------------------------------------------------------
# Lifecycle: snapshot reset + attach/detach symmetry
# ---------------------------------------------------------------------------


class TestSnapshotReset:
    def test_restore_clears_per_run_breach_state(self):
        machine, monitor = hooked_machine()
        snap = machine.snapshot()
        monitor.on_call(machine, 0x1000, 0x2000, 0x1005, False)
        monitor.on_ret(machine, 0x2004, 0x3333)
        assert monitor.total_breaches() == 1
        machine.restore(snap)
        assert monitor.timeline == []
        assert monitor.counts == {}
        assert monitor.first_breach is None

    def test_highwater_survives_restore(self):
        machine, monitor = hooked_machine()
        module = ProtectedModule(
            name="m", text_start=0x30000000, text_end=0x30001000,
            data_start=0x30001000, data_end=0x30002000,
            entry_points=frozenset({0x30000000}),
        )
        machine.pma.register(module, b"\x01" * 16)
        stale = machine.snapshot()
        machine.pma.counter_increment(module)
        machine.snapshot()
        machine.restore(stale)
        assert monitor.first_breach.invariant == "counter-freshness"
        # A second rollback from the same stale point flags again: the
        # high-water mark survived the restore that reset the timeline.
        machine.restore(stale)
        assert monitor.first_breach.invariant == "counter-freshness"

    def test_begin_run_resets_like_restore(self):
        machine, monitor = hooked_machine()
        monitor.on_call(machine, 0x1000, 0x2000, 0x1005, False)
        monitor.on_ret(machine, 0x2004, 0x3333)
        monitor.begin_run()
        assert monitor.total_breaches() == 0


class TestAttachDetachSymmetry:
    @pytest.mark.parametrize("block", [False, True])
    def test_detach_restores_fast_path(self, block):
        machine = Machine(MachineConfig(block_cache=block))
        monitor = InvariantMonitor()
        machine.attach_observer(monitor)
        assert machine._observers is not None
        # A monitor-only hub is dispatch-transparent: the block tier
        # stays licensed to run against it.
        assert machine._blocks_hub is machine._observers
        machine.detach_observer(monitor)
        assert machine._observers is None
        assert machine._blocks_hub is None

    @pytest.mark.parametrize("block", [False, True])
    def test_detach_after_run_restores_fast_path(self, block):
        program = c_program("""
void main() {
    int i;
    int acc = 0;
    for (i = 0; i < 50; i++) { acc += i; }
    print_int(acc);
}
""")
        machine = program.machine
        machine.config.block_cache = block
        monitor = InvariantMonitor()
        machine.attach_observer(monitor)
        result = program.run()
        assert result.output == b"1225\n"
        machine.detach_observer(monitor)
        assert machine._observers is None
        assert machine._blocks_hub is None

    def test_non_transparent_observer_disables_block_hub(self):
        machine = Machine(MachineConfig(block_cache=True))
        machine.attach_observer(EventTrace())
        assert machine._observers is not None
        assert machine._blocks_hub is None

    def test_mixed_hub_is_not_transparent(self):
        machine = Machine(MachineConfig(block_cache=True))
        machine.attach_observer(InvariantMonitor())
        assert machine._blocks_hub is machine._observers
        metrics = MetricsCollector()
        machine.attach_observer(metrics)
        assert machine._blocks_hub is None      # on_instruction subscriber
        machine.detach_observer(metrics)
        assert machine._blocks_hub is machine._observers


# ---------------------------------------------------------------------------
# Downstream wiring: metrics, traces, exporters, matrix, fuzzer
# ---------------------------------------------------------------------------


class TestBreachEventWiring:
    def _breach_with(self, *observers):
        machine = Machine(MachineConfig())
        monitor = InvariantMonitor()
        for observer in observers:
            machine.attach_observer(observer)
        machine.attach_observer(monitor)
        monitor.on_call(machine, 0x1000, 0x2000, 0x1005, False)
        monitor.on_ret(machine, 0x2004, 0x3333)

    def test_metrics_count_breaches_by_invariant(self):
        metrics = MetricsCollector()
        self._breach_with(metrics)
        assert metrics.breaches["return-integrity"] == 1
        snapshot = metrics.snapshot()
        assert snapshot["invariant_breaches"] == {"return-integrity": 1}

    def test_render_metrics_reports_breaches(self):
        from repro.experiments.reporting import render_metrics

        metrics = MetricsCollector()
        self._breach_with(metrics)
        text = render_metrics(metrics.snapshot())
        assert "invariant breaches" in text
        assert "return-integrity=1" in text

    def test_event_trace_records_breach_events(self):
        trace = EventTrace(include_memory=False)
        self._breach_with(trace)
        breaches = [event for event in trace.events
                    if event.kind == "breach"]
        assert len(breaches) == 1
        assert breaches[0].data["invariant"] == "return-integrity"
        assert breaches[0].ip == 0x2004

    def test_chrome_export_emits_breach_instants(self):
        trace = EventTrace(include_memory=False)
        self._breach_with(trace)
        instants = [event for event in chrome_trace_events(trace.events)
                    if event.get("cat") == "breach"]
        assert len(instants) == 1
        assert instants[0]["args"]["invariant"] == "return-integrity"


class TestMatrixAttribution:
    @pytest.fixture(scope="class")
    def cells(self):
        from repro.experiments.matrix import run_matrix

        return run_matrix(presets=(("none", NONE),), jobs=1,
                          invariants=True)

    def test_every_successful_attack_names_a_breaching_ip(self, cells):
        for cell in cells:
            if cell.result.succeeded:
                assert cell.first_breach is not None, cell.attack
                invariant, _, where = cell.first_breach.partition("@")
                assert invariant
                assert where.startswith("0x")

    def test_render_adds_first_breach_table(self, cells):
        from repro.experiments.matrix import render_matrix

        text = render_matrix(cells, invariants=True)
        assert "first invariant broken" in text
        assert "return-integrity@0x" in text

    def test_unmonitored_matrix_renders_single_table(self):
        from repro.experiments.matrix import render_matrix, run_matrix

        cells = run_matrix(presets=(("none", NONE),), jobs=1)
        assert all(cell.first_breach is None for cell in cells)
        assert "first invariant broken" not in render_matrix(cells)


class TestCrashSiteCompat:
    def test_three_field_construction_unchanged(self):
        old = CrashSite("RedZoneFault", 0x1000, 123)
        assert old.first_breach is None
        assert old == CrashSite("RedZoneFault", 0x1000, 123, None)
        assert len({old, CrashSite("RedZoneFault", 0x1000, 123)}) == 1

    def test_first_breach_extends_the_dedup_key(self):
        plain = CrashSite("RedZoneFault", 0x1000, 123)
        attributed = CrashSite("RedZoneFault", 0x1000, 123, "canary")
        assert plain != attributed
        assert len({plain, attributed}) == 2

    def test_pickle_round_trip(self):
        site = CrashSite("ProtectionFault", 0x2000, 7, "wx-write")
        assert pickle.loads(pickle.dumps(site)) == site


class TestFuzzerAttribution:
    def test_crash_sites_carry_first_breach(self):
        from repro.analysis.greybox import (
            SnapshotExecutor,
            VictimFactory,
            outcome_of,
        )

        executor = SnapshotExecutor(
            VictimFactory("fig1_staged", TESTING), invariants=True)
        observer_machine = executor.machine
        from repro.observe.coverage import CoverageObserver
        observer = CoverageObserver()
        observer_machine.attach_observer(observer)
        executor.observer = observer
        result = executor.run(b"GET " + b"A" * 32)
        outcome = outcome_of(observer, result, executor.monitor)
        assert outcome.crash_site is not None
        assert outcome.crash_site.first_breach is not None

    def test_greybox_reports_attributed_crashes(self):
        from repro.analysis.greybox import GreyboxFuzzer, VictimFactory

        fuzzer = GreyboxFuzzer(
            VictimFactory("fig1_staged", TESTING), seed=3,
            seeds=(b"GET " + b"A" * 32,), invariants=True,
            program="fig1_staged", config="testing",
        )
        report = fuzzer.run(max_execs=40, stop_on_first_crash=True,
                            minimize=False)
        assert report.crashes
        assert all(record.site.first_breach is not None
                   for record in report.crashes)

    def test_monitor_resets_between_fork_server_runs(self):
        from repro.analysis.greybox import SnapshotExecutor, VictimFactory

        executor = SnapshotExecutor(
            VictimFactory("fig1_staged", TESTING), invariants=True)
        crash = executor.run(b"GET " + b"A" * 32)
        assert crash.fault is not None
        assert executor.monitor.total_breaches() > 0
        clean = executor.run(b"x")
        assert clean.fault is None
        assert executor.monitor.total_breaches() == 0
