"""Tests for the peephole optimizer: correctness and effectiveness."""

import pytest

from repro.link import load
from repro.machine import RunStatus
from repro.minic import CompileOptions, compile_source, compile_to_asm
from repro.minic.optimizer import optimize_asm

PLAIN = CompileOptions()
OPT = CompileOptions(optimize=True)


def run_both(source: str, stdin: bytes = b"") -> tuple:
    """Run a program unoptimized and optimized; return both results."""
    results = []
    for options in (PLAIN, OPT):
        program = load([compile_source(source, "t", options)])
        program.feed(stdin)
        results.append(program.run())
    return tuple(results)


class TestPatterns:
    def test_push_pop_merged(self):
        text = optimize_asm("    push r0\n    pop r2\n")
        assert "mov r2, r0" in text
        assert "push" not in text

    def test_push_pop_same_register_dropped(self):
        text = optimize_asm("    push r0\n    pop r0\n")
        assert "push" not in text and "pop" not in text and "mov" not in text

    def test_push_pop_not_merged_across_label(self):
        text = optimize_asm("    push r0\n.L1:\n    pop r2\n")
        assert "push r0" in text and "pop r2" in text

    def test_mov_self_dropped(self):
        text = optimize_asm("    mov r0, r0\n")
        assert "mov" not in text

    def test_lea_load_fused(self):
        text = optimize_asm("    lea r0, [bp-0x4]\n    load r0, [r0]\n")
        assert "load r0, [bp-0x4]" in text
        assert "lea" not in text

    def test_lea_store_fused_for_scratch(self):
        text = optimize_asm("    lea r1, [bp-0x8]\n    store [r1], r0\n")
        assert "store [bp-0x8], r0" in text

    def test_lea_store_not_fused_for_non_scratch(self):
        original = "    lea r3, [bp-0x8]\n    store [r3], r0\n"
        assert "lea r3" in optimize_asm(original)

    def test_scratch_imm_forwarded(self):
        text = optimize_asm("    mov r1, 42\n    mov r0, r1\n")
        assert "mov r0, 42" in text

    def test_symbolic_imm_not_forwarded(self):
        original = "    mov r1, __canary\n    mov r0, r1\n"
        assert "mov r1, __canary" in optimize_asm(original)

    def test_jump_to_next_dropped(self):
        text = optimize_asm("    jmp .L5\n.L5:\n")
        assert "jmp" not in text

    def test_cascading_to_fixpoint(self):
        # push/pop merge exposes a mov-self to drop.
        text = optimize_asm("    push r0\n    pop r0\n    mov r1, r1\n")
        assert "push" not in text and "mov" not in text


class TestSemanticsPreserved:
    PROGRAMS = [
        ("""
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
void main() { print_int(fib(12)); }
""", b"", b"144\n"),
        ("""
void main() {
    int a[8];
    int i;
    for (i = 0; i < 8; i = i + 1) { a[i] = i * 3; }
    int total = 0;
    for (i = 0; i < 8; i = i + 1) { total = total + a[i]; }
    print_int(total);
}
""", b"", b"84\n"),
        ("""
void main() {
    char buf[8];
    int n = read(0, buf, 8);
    write(1, buf, n);
}
""", b"hiya", b"hiya"),
        ("""
int pick(int (*f)(int), int x) { return f(x); }
int dbl(int x) { return 2 * x; }
void main() { print_int(pick(&dbl, 21)); }
""", b"", b"42\n"),
    ]

    @pytest.mark.parametrize("source,stdin,expected",
                             PROGRAMS, ids=["fib", "arrays", "io", "funcptr"])
    def test_same_output(self, source, stdin, expected):
        plain, optimized = run_both(source, stdin)
        assert plain.status is RunStatus.EXITED
        assert optimized.status is RunStatus.EXITED
        assert plain.output == optimized.output == expected

    @pytest.mark.parametrize("source,stdin,expected",
                             PROGRAMS, ids=["fib", "arrays", "io", "funcptr"])
    def test_fewer_instructions(self, source, stdin, expected):
        plain, optimized = run_both(source, stdin)
        assert optimized.instructions < plain.instructions

    def test_mitigations_compose_with_optimizer(self):
        from repro.mitigations import CANARY
        from tests.conftest import run_c

        source = """
void main() {
    char buf[16];
    read(0, buf, 64);
}
"""
        options = CompileOptions(stack_canaries=True, optimize=True)
        result = run_c(source, stdin=b"A" * 40, config=CANARY, options=options)
        from repro.errors import CanaryFault

        assert isinstance(result.fault, CanaryFault)

    def test_bounds_checks_survive_optimization(self):
        from repro.errors import BoundsFault
        from tests.conftest import run_c

        result = run_c("""
void main() {
    int a[4];
    int i = 9;
    a[i] = 1;
}
""", options=CompileOptions(bounds_checks=True, optimize=True))
        assert isinstance(result.fault, BoundsFault)

    def test_typical_saving_is_substantial(self):
        plain, optimized = run_both(self.PROGRAMS[1][0])
        saving = 1 - optimized.instructions / plain.instructions
        assert saving > 0.08  # the boilerplate really was substantial
