"""Tests for the machine-code attacker: scraping, residue, Fig 4, rollback."""

import pytest

from repro.attacks.base import Outcome
from repro.attacks.machinecode import (
    attack_memory_scraper,
    attack_register_residue,
    attack_stack_residue,
    sweep_memory,
)
from repro.attacks.payloads import p32
from repro.attacks.pma_exploit import (
    attack_direct_midmodule_call,
    attack_fig4_function_pointer,
    brute_force_report,
)
from repro.attacks.rollback import Platform, attack_rollback, boot, liveness_report
from repro.programs import build_secret_program


class TestScraper:
    def test_module_malware_scrapes_plain_program(self):
        result = attack_memory_scraper(protected=False, secure=False)
        assert result.succeeded
        assert p32(1234) in result.evidence["leak"]

    def test_kernel_malware_scrapes_plain_program(self):
        assert attack_memory_scraper(protected=False, secure=False,
                                     kernel=True).succeeded

    def test_pma_denies_module_malware(self):
        result = attack_memory_scraper(protected=True)
        assert result.outcome is Outcome.DETECTED

    def test_pma_denies_kernel_malware(self):
        """The headline PMA property: even the kernel cannot read the
        module (Section IV-A)."""
        result = attack_memory_scraper(protected=True, kernel=True)
        assert result.outcome is Outcome.DETECTED

    def test_sweep_census_secrets(self):
        program = build_secret_program()
        program.feed(p32(1) + p32(1))
        program.run()
        report = sweep_memory(program.machine, kernel=False,
                              needles={"PIN": p32(1234)})
        assert "PIN" in report.secrets_found
        assert report.bytes_denied == 0

    def test_sweep_census_protected(self):
        program = build_secret_program(protected=True, secure=True)
        program.feed(p32(1) + p32(1))
        program.run()
        report = sweep_memory(program.machine, kernel=True,
                              needles={"PIN": p32(1234), "secret": p32(666)})
        assert report.secrets_found == []
        assert report.bytes_denied > 0


class TestResidue:
    def test_shared_stack_leaks_module_internals(self):
        assert attack_stack_residue(protected=False, secure=False).succeeded
        assert attack_stack_residue(protected=True, secure=False).succeeded

    def test_private_stack_stops_leak(self):
        result = attack_stack_residue(protected=True, secure=True)
        assert result.outcome is Outcome.NO_EFFECT

    def test_registers_leak_without_scrubbing(self):
        assert attack_register_residue(protected=True, secure=False).succeeded

    def test_scrubbing_cleans_registers(self):
        result = attack_register_residue(protected=True, secure=True)
        assert result.outcome is Outcome.NO_EFFECT


class TestFig4:
    def test_insecure_compilation_exploited(self):
        result = attack_fig4_function_pointer(secure=False)
        assert result.succeeded
        assert b"666" in result.evidence["output"]

    def test_secure_compilation_detects(self):
        result = attack_fig4_function_pointer(secure=True)
        assert result.outcome is Outcome.DETECTED

    def test_direct_midmodule_call_blocked_by_hardware(self):
        result = attack_direct_midmodule_call()
        assert result.outcome is Outcome.DETECTED

    def test_exploit_resets_tries_left(self):
        """The paper's stated effect: the brute-force counter resets.

        We verify via the hardware: after the exploit, the module's
        tries_left cell holds 3 again even though a wrong guess just
        'happened'."""
        from repro.attacks.pma_exploit import (
            _EXPLOIT_MAIN_TEMPLATE,
            find_reset_instruction,
        )
        from repro.asm import assemble

        study = build_secret_program(protected=True, secure=False, fig4=True)
        target = find_reset_instruction(study)
        exploit = assemble(_EXPLOIT_MAIN_TEMPLATE.format(target=target), "main")
        program = build_secret_program(protected=True, secure=False,
                                       fig4=True, main_object=exploit)
        program.run()
        tries_addr = program.image.symbol("secret:tries_left")
        # Read through the raw backing store (we are the experimenter,
        # not the attacker) to check the module's private state.
        assert program.machine.memory.read_word(tries_addr) == 3

    def test_brute_force_blocked_only_by_secure_compile(self):
        insecure = brute_force_report(secure=False)
        secure = brute_force_report(secure=True)
        assert insecure["secret_obtained"]
        assert insecure["lockout_bypassed"]
        assert not secure["secret_obtained"]
        assert not secure["lockout_bypassed"]


class TestRollback:
    def test_plain_sealing_rolled_back(self):
        result = attack_rollback(monotonic=False)
        assert result.succeeded
        assert result.evidence["wrong_guesses"] > 3

    def test_monotonic_counter_detects_replay(self):
        result = attack_rollback(monotonic=True)
        assert result.outcome is Outcome.DETECTED

    def test_sealed_blobs_hide_state(self):
        platform = Platform()
        report = boot(platform, b"", [1111], monotonic=False)
        blob = report.tries[0].blob
        assert p32(2) not in blob      # tries_left value not visible
        assert len(blob) > 32          # iv + ct + tag

    def test_forged_blob_rejected(self):
        platform = Platform()
        report = boot(platform, b"", [1111], monotonic=False)
        forged = bytearray(report.tries[0].blob)
        forged[-1] ^= 1
        replay = boot(platform, bytes(forged), [1234], monotonic=False)
        assert replay.restore_status == -1

    def test_monotonic_fresh_blob_accepted(self):
        platform = Platform()
        first = boot(platform, b"", [1111], monotonic=True)
        latest = first.tries[0].blob
        second = boot(platform, latest, [1234], monotonic=True, seed=1)
        assert second.restore_status == 0
        assert second.tries[0].result == 666

    def test_monotonic_first_boot_replay_rejected(self):
        """Pretending 'first boot' after the counter moved must fail."""
        platform = Platform()
        boot(platform, b"", [1111], monotonic=True)
        replay = boot(platform, b"", [1234], monotonic=True, seed=1)
        assert replay.restore_status == -3

    def test_liveness_tradeoff(self):
        plain = liveness_report(monotonic=False)
        strict = liveness_report(monotonic=True)
        assert plain["liveness_preserved"] and not plain["rollback_protected"]
        assert strict["rollback_protected"] and not strict["liveness_preserved"]


class TestIceModule:
    """The Ice-style module resolves the rollback/liveness tension at
    machine level: safe against replay AND crash-recoverable."""

    def test_full_report(self):
        from repro.attacks.rollback import ice_report

        report = ice_report()
        assert report["clean_boot_ok"]
        assert report["recovers_after_crash_before_commit"]
        assert report["replay_of_committed_old_state_refused"]

    def test_recovery_completes_the_commit(self):
        """After recovering an uncommitted blob, the module completed
        the increment itself: the recovered blob is now committed and
        still accepted on yet another boot."""
        from repro.attacks.rollback import Platform, boot_ice

        platform = Platform(platform_key=b"\x31" * 32)
        first = boot_ice(platform, b"", [(1111, True)])
        second = boot_ice(platform, first.tries[0].blob, [(1112, False)],
                          seed=1)
        uncommitted = second.tries[0].blob
        third = boot_ice(platform, uncommitted, [(1113, False)], seed=2)
        assert third.restore_status == 0
        # ...and the *pre-crash* blob is now stale (two commits behind).
        fourth = boot_ice(platform, first.tries[0].blob, [(1234, True)],
                          seed=3)
        assert fourth.restore_status == -2

    def test_lockout_still_enforced_across_boots(self):
        from repro.attacks.rollback import Platform, boot_ice

        platform = Platform(platform_key=b"\x32" * 32)
        report = boot_ice(platform, b"", [(1, True)])
        blob = report.tries[0].blob
        for seed in (1, 2):
            report = boot_ice(platform, blob, [(1, True)], seed=seed)
            blob = report.tries[0].blob
        final = boot_ice(platform, blob, [(1234, True)], seed=3)
        # Three wrong tries happened across boots: locked out.
        assert final.tries[0].result == 0
