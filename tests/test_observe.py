"""Tests for repro.observe: event bus, tracers, metrics, profiler,
exporters, and the zero-cost attach/detach machinery."""

from __future__ import annotations

import io
import json

import pytest
from hypothesis import given, settings

from repro.asm import assemble
from repro.link import load
from repro.machine import Machine, MachineConfig, RunStatus
from repro.machine.machine import _MEMORY_ACCESSORS
from repro.observe import (
    EventTrace,
    GuestProfiler,
    InstructionTracer,
    MetricsCollector,
    Observer,
    export_chrome_trace,
    export_jsonl,
    observe_new_machines,
)
from tests.conftest import asm_program, c_program, run_c
from tests.test_differential import variable_programs

EXIT_0 = """
.text
.global main
main:
    mov r0, 0
    sys 3
"""

CALLS = """
.text
.global main
main:
    call helper
    call helper
    mov r0, 0
    sys 3
.global helper
helper:
    mov r1, 1
    ret
"""


def observed(source: str, observer: Observer, stdin: bytes = b""):
    program = asm_program(source)
    program.machine.attach_observer(observer)
    program.feed(stdin)
    return program.run()


class TestAttachDetach:
    def test_unobserved_machine_has_no_hub(self):
        machine = Machine(MachineConfig())
        assert list(machine.observers) == []
        assert machine._observers is None

    def test_attach_then_detach_restores_null_state(self):
        machine = Machine(MachineConfig())
        observer = MetricsCollector()
        machine.attach_observer(observer)
        assert list(machine.observers) == [observer]
        assert machine._observers is not None
        machine.detach_observer(observer)
        assert list(machine.observers) == []
        assert machine._observers is None

    def test_memory_accessors_swapped_only_for_memory_subscribers(self):
        machine = Machine(MachineConfig())
        for name in _MEMORY_ACCESSORS:
            assert name not in machine.__dict__

        tracer = InstructionTracer()  # no on_read/on_write override
        machine.attach_observer(tracer)
        for name in _MEMORY_ACCESSORS:
            assert name not in machine.__dict__

        metrics = MetricsCollector()  # subscribes to memory events
        machine.attach_observer(metrics)
        for name in _MEMORY_ACCESSORS:
            assert name in machine.__dict__

        machine.detach_observer(metrics)
        for name in _MEMORY_ACCESSORS:
            assert name not in machine.__dict__

    def test_event_trace_without_memory_keeps_accessors_unwrapped(self):
        machine = Machine(MachineConfig())
        machine.attach_observer(EventTrace(include_memory=False))
        for name in _MEMORY_ACCESSORS:
            assert name not in machine.__dict__


class TestEventKinds:
    def test_call_and_ret_events(self):
        trace = EventTrace()
        observed(CALLS, trace)
        # crt0's _start calls main, then main calls helper twice.
        calls = [e for e in trace.events if e.kind == "call"]
        rets = [e for e in trace.events if e.kind == "ret"]
        assert len(calls) == 3
        assert len(rets) == 2
        assert all(not e.data["indirect"] for e in calls)
        # helper's ret returns to the instruction after its call site.
        assert rets[0].data["target"] == calls[1].data["return_addr"]

    def test_indirect_call_flagged(self):
        trace = EventTrace()
        observed("""
.text
.global main
main:
    mov r1, helper
    call r1
    mov r0, 0
    sys 3
.global helper
helper:
    ret
""", trace)
        indirect = [e for e in trace.events
                    if e.kind == "call" and e.data["indirect"]]
        assert len(indirect) == 1

    def test_branch_taken_and_not_taken(self):
        trace = EventTrace()
        observed("""
.text
.global main
main:
    mov r0, 1
    cmp r0, 1
    jz taken
    mov r0, 99
taken:
    cmp r0, 2
    jz never
    mov r0, 0
never:
    sys 3
""", trace)
        branches = [e for e in trace.events if e.kind == "branch"]
        assert [e.data["taken"] for e in branches] == [True, False]

    def test_syscall_event(self):
        trace = EventTrace()
        observed(EXIT_0, trace)
        syscalls = [e for e in trace.events if e.kind == "syscall"]
        assert [e.data["number"] for e in syscalls] == [3]

    def test_fault_event_names_faulting_ip(self):
        trace = EventTrace()
        result = observed("""
.text
.global main
main:
    mov r1, 0x40000000
    load r0, [r1]
""", trace)
        assert result.status is RunStatus.FAULT
        faults = [e for e in trace.events if e.kind == "fault"]
        assert len(faults) == 1
        assert faults[0].data["fault"] == "MemoryFault"
        assert faults[0].ip == result.fault.address if hasattr(
            result.fault, "address") else True

    def test_write_events_record_writer_ip(self):
        trace = EventTrace()
        observed(CALLS, trace)
        writes = [e for e in trace.events if e.kind == "write"]
        assert writes, "call pushes must emit write events"
        # each write is attributed to the instruction that performed it
        insn_ips = {e.ip for e in trace.events if e.kind == "insn"}
        assert all(w.ip in insn_ips for w in writes)

    def test_pma_enter_and_exit_events(self):
        module = assemble("""
.text
.entry api
api:
    mov r0, 42
    ret
""", "mod")
        program = load([assemble("""
.text
.global main
main:
    call api
    sys 3
""", "main"), module])
        trace = EventTrace()
        program.machine.attach_observer(trace)
        result = program.run()
        assert result.exit_code == 42
        kinds = [e.kind for e in trace.events
                 if e.kind in ("pma_enter", "pma_exit")]
        assert kinds == ["pma_enter", "pma_exit"]
        enters = [e for e in trace.events if e.kind == "pma_enter"]
        assert enters[0].data["module"] == "mod"

    def test_decode_miss_and_invalidate_events(self):
        trace = EventTrace()
        machine = Machine(MachineConfig())
        machine.attach_observer(trace)
        machine.memory.map_region(0x1000, 0x1000, 7)
        from repro.isa import build, encode_many

        machine.memory.write_bytes(0x1000, encode_many([
            build.mov_ri(0, 0), build.sys(3)]))
        machine.cpu.ip = 0x1000
        machine.run(max_instructions=100)
        misses = [e for e in trace.events if e.kind == "decode_miss"]
        assert len(misses) == 2  # one per distinct instruction
        machine.flush_decode_cache()
        invalidates = [e for e in trace.events
                       if e.kind == "decode_invalidate"]
        assert invalidates and invalidates[-1].data["page"] is None
        assert invalidates[-1].data["count"] == 2

    def test_instruction_events_match_executed_count(self):
        trace = EventTrace()
        result = observed(CALLS, trace)
        insns = [e for e in trace.events if e.kind == "insn"]
        assert len(insns) == result.instructions


class TestTracerCompat:
    def test_config_trace_still_works(self):
        result = run_c("void main() { print_int(7); }", trace=True)
        assert result.output == b"7\n"

    def test_trace_property_serves_tracer_entries(self):
        program = c_program("void main() { }", trace=True)
        program.run()
        assert program.machine.trace  # non-empty
        assert program.machine.trace is program.machine.tracer.entries
        assert program.machine.trace_dropped == 0

    def test_trace_limit_counts_dropped(self):
        program = asm_program(CALLS, trace=True, trace_limit=3)
        result = program.run()
        machine = program.machine
        assert len(machine.trace) == 3
        assert machine.trace_dropped == result.instructions - 3

    def test_untraced_machine_has_empty_trace(self):
        machine = Machine(MachineConfig())
        assert machine.trace == []
        assert machine.trace_dropped == 0
        assert machine.tracer is None

    def test_event_trace_dropped_counter(self):
        trace = EventTrace(limit=5)
        observed(CALLS, trace)
        assert len(trace.events) == 5
        assert trace.dropped > 0


class TestRunResultTiming:
    def test_duration_and_rate_recorded(self):
        result = run_c("void main() { print_int(1); }")
        assert result.duration_seconds > 0
        assert result.instructions_per_second > 0
        assert result.instructions_per_second == pytest.approx(
            result.instructions / result.duration_seconds)

    def test_zero_duration_rate_is_zero(self):
        from repro.machine import RunResult

        result = RunResult(status=RunStatus.EXITED, exit_code=0, fault=None,
                           instructions=10, output=b"", shell_spawned=False)
        assert result.instructions_per_second == 0.0


class TestMetrics:
    def test_snapshot_shape_and_counts(self):
        metrics = MetricsCollector()
        result = observed(CALLS, metrics)
        snap = metrics.snapshot()
        assert snap["instructions"] == result.instructions
        assert snap["control"]["call"] == 3  # _start->main + 2x helper
        assert snap["control"]["ret"] == 2
        assert snap["syscalls"] == {3: 1}
        assert snap["faults"] == {}
        assert snap["memory"]["writes"] >= 2  # the two call pushes
        assert snap["decode_cache"]["misses"] > 0
        json.dumps(snap)  # plain-dict contract: JSON-serialisable

    def test_aggregates_across_machines(self):
        metrics = MetricsCollector()
        with observe_new_machines(lambda machine: metrics):
            run_c("void main() { }")
            run_c("void main() { }")
        assert metrics.syscalls[3] == 2

    def test_observe_scope_does_not_leak(self):
        with observe_new_machines(lambda machine: MetricsCollector()):
            pass
        machine = Machine(MachineConfig())
        assert machine._observers is None

    @settings(max_examples=15, deadline=None)
    @given(variable_programs())
    def test_metrics_instruction_count_matches_machine(self, pair):
        source, _ = pair
        metrics = MetricsCollector()
        program = c_program(source)
        program.machine.attach_observer(metrics)
        result = program.run()
        assert metrics.instructions == result.instructions
        assert sum(metrics.opcodes.values()) == result.instructions


class TestProfiler:
    def test_flat_profile_attributes_recursion(self):
        program = c_program("""
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
void main() { print_int(fib(8)); }
""")
        profiler = GuestProfiler.for_program(program)
        program.machine.attach_observer(profiler)
        result = program.run()
        rows = profiler.flat_profile()
        by_name = {row["function"]: row for row in rows}
        assert by_name["fib"]["calls"] > 20  # fib(8) calls
        assert by_name["fib"]["self"] > by_name["main"]["self"]
        assert profiler.total_instructions == result.instructions
        edges = {(e["caller"], e["callee"]) for e in profiler.call_graph()}
        assert ("fib", "fib") in edges
        assert ("main", "fib") in edges

    def test_symbolize(self):
        profiler = GuestProfiler([(0x1000, "alpha"), (0x2000, "beta")])
        assert profiler.symbolize(0x1000) == "alpha"
        assert profiler.symbolize(0x1fff) == "alpha"
        assert profiler.symbolize(0x2004) == "beta"
        assert profiler.symbolize(0x500) == "0x00000500"

    def test_hot_pages(self):
        program = c_program("void main() { print_int(3); }")
        profiler = GuestProfiler.for_program(program)
        program.machine.attach_observer(profiler)
        program.run()
        pages = profiler.hot_pages()
        assert pages and all(
            row["fetches"] + row["accesses"] > 0 for row in pages)


class TestExporters:
    def _trace(self):
        trace = EventTrace()
        observed(CALLS, trace)
        return trace

    def test_chrome_trace_is_valid_and_balanced(self):
        trace = self._trace()
        buffer = io.StringIO()
        document = export_chrome_trace(trace, buffer)
        parsed = json.loads(buffer.getvalue())
        assert parsed == document
        events = parsed["traceEvents"]
        # _start->main never returns (main exits via sys 3), so one B
        # slice stays open; the two helper slices balance.
        phases = [e["ph"] for e in events if e["ph"] in "BE"]
        assert phases == ["B", "B", "E", "B", "E"]
        assert all({"pid", "tid", "ts"} <= set(e) for e in events)
        assert parsed["otherData"]["dropped_events"] == 0

    def test_chrome_trace_symbolizes_call_slices(self):
        program = asm_program(CALLS)
        trace = EventTrace()
        program.machine.attach_observer(trace)
        program.run()
        symbols = {addr: name for addr, name
                   in program.image.function_symbols()}
        from repro.observe import chrome_trace_events

        events = chrome_trace_events(trace.events, symbols)
        names = [e["name"] for e in events if e["ph"] == "B"]
        assert names == ["main", "helper", "helper"]

    def test_jsonl_round_trips(self):
        trace = self._trace()
        buffer = io.StringIO()
        count = export_jsonl(trace, buffer)
        lines = buffer.getvalue().splitlines()
        assert len(lines) == count == len(trace.events)
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["seq"] == 0
        assert {"kind", "seq", "ip"} <= set(parsed[0])

    def test_export_to_file_path(self, tmp_path):
        trace = self._trace()
        destination = tmp_path / "trace.json"
        export_chrome_trace(trace, str(destination))
        assert json.loads(destination.read_text())["traceEvents"]


class TestProvenance:
    def test_fig1_provenance_names_clobbering_instruction(self):
        from repro.attacks.study import locate_overflow
        from repro.experiments.fig1 import attack_provenance
        from repro.programs import build_fig1

        report = attack_provenance()
        assert report.clobber_ip is not None
        assert report.clobber_value == 0x41414141
        assert "get_request" in report.clobber_symbol
        # The clobber site matches what the attacker's study predicts.
        site = locate_overflow(build_fig1(), frames_up=1)
        assert report.return_addr_slot == site.return_addr_slot
        rendered = report.render()
        assert "overwrote the return address" in rendered
        assert f"0x{report.clobber_ip:08x}" in rendered

    def test_writes_to_query_overlap_semantics(self):
        trace = EventTrace()
        observed(CALLS, trace)
        all_writes = [e for e in trace.events if e.kind == "write"]
        addr = all_writes[0].data["addr"]
        hits = trace.writes_to(addr, 1)
        assert all_writes[0] in hits
