"""Tests for the canonical programs: honest behaviour and bug shape."""

import pytest

from repro.attacks.payloads import p32
from repro.machine import RunStatus
from repro.programs import build_fig1, build_secret_program, build_victim


class TestFig1:
    def test_safe_variant_handles_oversized_input(self):
        program = build_fig1(vulnerable=False)
        program.feed(b"Z" * 64)
        result = program.run()
        assert result.status is RunStatus.EXITED
        assert result.output == b"Z" * 16  # only 16 bytes ever read

    def test_vulnerable_variant_benign_input(self):
        program = build_fig1()
        program.feed(b"hello")
        result = program.run()
        assert result.status is RunStatus.EXITED

    def test_vulnerable_variant_overflow_changes_control_flow(self):
        program = build_fig1()
        program.feed(b"A" * 32)
        result = program.run()
        assert result.status is RunStatus.FAULT
        # IP ended up where the attacker's bytes sent it.
        assert program.machine.cpu.ip == 0x41414141

    def test_paper_buffer_contents(self):
        """The figure shows buf holding 'ABCDEFGHIJKLMNO\\0'."""
        program = build_fig1()
        program.feed(b"ABCDEFGHIJKLMNO\x00")
        result = program.run()
        assert result.output.startswith(b"ABCDEFGHIJKLMNO\x00")


class TestVictims:
    def test_data_only_honest(self):
        program = build_victim("data_only")
        program.feed(b"alice")
        assert program.run().output == b"0\n"

    def test_funcptr_honest(self):
        program = build_victim("funcptr")
        program.feed(b"SAVE10")
        assert program.run().output == b"90\n"

    def test_heartbleed_honest(self):
        program = build_victim("heartbleed")
        program.feed(p32(16) + b"normal request!!")
        result = program.run()
        assert result.output == b"normal request!!"
        assert b"KEY-" not in result.output

    def test_arbitrary_write_honest(self):
        program = build_victim("arbitrary_write")
        program.feed(p32(1) + p32(2) + p32(555))   # in-bounds write
        result = program.run()
        assert result.exit_code == 7
        assert b"0\n" in result.output

    def test_temporal_reads_stale_frame(self):
        program = build_victim("temporal")
        result = program.run()
        assert result.status is RunStatus.EXITED
        # Undefined behaviour concretely: the value is NOT the 41 that
        # was stored through the dangling pointer's pointee.
        assert result.output != b"41\n"

    def test_leak_then_smash_honest(self):
        program = build_victim("leak_then_smash")
        program.feed(p32(1) + p32(8) + p32(8) + b"request!")
        assert program.run().output == b"request!"

    def test_rop_exfil_honest(self):
        program = build_victim("rop_exfil")
        program.feed(b"ping")
        assert program.run().output == b"ping"


class TestSecretProgram:
    def test_lockout_behaviour_matches_paper(self):
        """Wrong, wrong, wrong -> locked; correct PIN afterwards gets
        nothing (tries_left == 0)."""
        program = build_secret_program()
        program.feed(p32(4) + p32(1) + p32(2) + p32(3) + p32(1234))
        result = program.run()
        assert [int(x) for x in result.output.split()] == [0, 0, 0, 0]

    def test_correct_pin_resets_counter(self):
        program = build_secret_program()
        program.feed(p32(6) + p32(1) + p32(2) + p32(1234)
                     + p32(1) + p32(2) + p32(1234))
        result = program.run()
        assert [int(x) for x in result.output.split()] == [0, 0, 666, 0, 0, 666]

    def test_protected_variant_same_behaviour(self):
        program = build_secret_program(protected=True, secure=True)
        program.feed(p32(2) + p32(9) + p32(1234))
        result = program.run()
        assert [int(x) for x in result.output.split()] == [0, 666]

    def test_fig4_honest_callback(self):
        program = build_secret_program(fig4=True, protected=True, secure=True)
        program.feed(p32(1) + p32(1234))
        result = program.run()
        assert [int(x) for x in result.output.split()] == [666]

    def test_fig4_unprotected_works_too(self):
        program = build_secret_program(fig4=True)
        program.feed(p32(2) + p32(1) + p32(1234))
        result = program.run()
        assert [int(x) for x in result.output.split()] == [0, 666]

    def test_module_statics_in_module_data_when_protected(self):
        program = build_secret_program(protected=True, secure=True)
        module = program.machine.pma.modules[0]
        pin_addr = program.image.symbol("secret:PIN")
        assert module.in_data(pin_addr)
