"""Tests for small supporting modules: reporting, mitigation config,
devices, and the error hierarchy."""

import pytest

from repro.errors import (
    CanaryFault,
    CompileError,
    MachineFault,
    ProtectionFault,
    ReproError,
    ToolchainError,
)
from repro.experiments.reporting import render_kv, render_table
from repro.machine.devices import InputChannel, OutputChannel, RandomDevice, ShellDevice
from repro.mitigations import (
    CANARY,
    DEPLOYED,
    HARDENED,
    MATRIX_PRESETS,
    MitigationConfig,
    NONE,
)


class TestReporting:
    def test_table_alignment(self):
        table = render_table(["a", "bbb"], [["x", 1], ["yyyy", 22]])
        lines = table.splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # every row the same width

    def test_table_title(self):
        assert render_table(["h"], [["v"]], title="T").startswith("T\n")

    def test_table_stringifies(self):
        table = render_table(["k"], [[None], [3.5], [True]])
        assert "None" in table and "3.5" in table and "True" in table

    def test_kv_block(self):
        block = render_kv("title", {"a": 1, "long_key": 2})
        assert block.splitlines()[0] == "title"
        assert "long_key : 2" in block


class TestMitigationConfig:
    def test_describe_none(self):
        assert NONE.describe() == "none"

    def test_describe_composition(self):
        assert DEPLOYED.describe() == "canary+dep+aslr16"
        assert "shadowstack" in HARDENED.describe()
        assert "cfi" in HARDENED.describe()

    def test_describe_typed_cfi(self):
        assert MitigationConfig(cfi_typed=True).describe() == "cfi-typed"

    def test_with_creates_modified_copy(self):
        changed = NONE.with_(dep=True)
        assert changed.dep and not NONE.dep

    def test_frozen(self):
        with pytest.raises(Exception):
            NONE.dep = True

    def test_matrix_presets_shape(self):
        names = [name for name, _ in MATRIX_PRESETS]
        assert names[0] == "none"
        assert "deployed" in names and "hardened" in names

    def test_canary_preset(self):
        assert CANARY.stack_canaries and not CANARY.dep


class TestDevices:
    def test_input_channel_eof(self):
        channel = InputChannel()
        channel.feed(b"abc")
        assert channel.read(2) == b"ab"
        assert channel.remaining == 1
        assert channel.read(10) == b"c"
        assert channel.read(10) == b""

    def test_output_channel_text(self):
        channel = OutputChannel()
        channel.write(b"x\xffy")
        assert channel.text() == "x\xffy"
        channel.clear()
        assert channel.getvalue() == b""

    def test_shell_device_counts(self):
        shell = ShellDevice()
        shell.spawn(0x100)
        shell.spawn(0x200)
        assert shell.spawned and shell.spawn_count == 2
        assert shell.spawn_ip == 0x100  # first spawn site retained
        shell.reset()
        assert not shell.spawned

    def test_random_device_determinism(self):
        assert RandomDevice(5).word() == RandomDevice(5).word()
        assert RandomDevice(5).word() != RandomDevice(6).word()

    def test_random_below(self):
        device = RandomDevice(1)
        assert all(0 <= device.below(10) < 10 for _ in range(50))


class TestErrorHierarchy:
    def test_all_faults_are_repro_errors(self):
        assert issubclass(MachineFault, ReproError)
        assert issubclass(CanaryFault, MachineFault)
        assert issubclass(ProtectionFault, MachineFault)
        assert issubclass(CompileError, ToolchainError)
        assert issubclass(ToolchainError, ReproError)

    def test_fault_carries_ip(self):
        fault = ProtectionFault("denied", ip=0x1234)
        assert "0x00001234" in str(fault)
        assert fault.ip == 0x1234

    def test_compile_error_location(self):
        error = CompileError("bad", line=3, col=7)
        assert "line 3" in str(error) and "col 7" in str(error)