"""Differential testing: snapshot/restore vs fresh-machine reruns.

The copy-on-write snapshot layer is a pure performance feature; a
restored machine must be indistinguishable from one freshly built and
loaded.  The directed cases replay the paper's adversarial workloads
-- the Fig. 1 stack-smash exploit, a ROP chain, a self-modifying
program -- as snapshot/restore trial sequences and hold them to the
byte-identical summaries of fresh machines, with the block cache both
on and off.  A hypothesis fuzzer then drives arbitrary
run/write/snapshot/restore interleavings against a deepcopy oracle:
restoring any snapshot must reproduce the exact state captured when it
was taken, never leaking pages dirtied afterwards.
"""

from __future__ import annotations

import copy

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import Mem, R0, R1, R2, R3, build, encode_many
from repro.machine import Machine, MachineConfig
from repro.machine import machine as machine_module
from repro.machine.memory import PAGE_SIZE, PERM_R, PERM_RW, PERM_RWX, Memory
from repro.mitigations import DEP, NONE
from tests.test_differential_blocks import (
    CODE,
    DATA,
    SEED_REGS,
    STACK_BASE,
    STACK_TOP,
    summarize,
)

# ---------------------------------------------------------------------------
# Memory-level copy-on-write unit tests
# ---------------------------------------------------------------------------


class TestMemoryCoW:
    def _memory(self) -> Memory:
        memory = Memory()
        memory.map_region(0x1000, 2 * PAGE_SIZE, PERM_RW)
        memory.write_bytes(0x1000, b"abcd")
        return memory

    def test_restore_rewinds_written_pages(self):
        memory = self._memory()
        snap = memory.snapshot()
        memory.write_bytes(0x1000, b"XYZ!")
        memory.write_bytes(0x2000, b"second page")
        changed, perms_changed = memory.restore(snap)
        assert changed == [1, 2]
        assert not perms_changed
        assert memory.read_bytes(0x1000, 4) == b"abcd"
        assert memory.read_bytes(0x2000, 4) == b"\x00" * 4

    def test_unwritten_pages_stay_shared(self):
        memory = self._memory()
        snap = memory.snapshot()
        memory.write_byte(0x1000, 0x41)
        # Only the written page was copied; the other still aliases
        # the frozen snapshot buffer (the O(dirty) property).
        assert memory._pages[1] is not snap.pages[1]
        assert memory._pages[2] is snap.pages[2]
        assert memory.dirty_page_count == 1

    def test_restore_discards_pages_mapped_after_snapshot(self):
        memory = self._memory()
        snap = memory.snapshot()
        memory.map_region(0x5000, PAGE_SIZE, PERM_RW)
        memory.write_bytes(0x5000, b"new")
        changed, _ = memory.restore(snap)
        assert 5 in changed
        assert not memory.is_mapped(0x5000)

    def test_restore_older_snapshot_diffs_by_identity(self):
        memory = self._memory()
        first = memory.snapshot()
        memory.write_bytes(0x1000, b"one")
        second = memory.snapshot()
        memory.write_bytes(0x2000, b"two")
        # Restoring the *older* snapshot leaves the fast dirty-set
        # path (its epoch no longer matches) and must still rewind
        # both pages.
        changed, _ = memory.restore(first)
        assert changed == [1, 2]
        assert memory.read_bytes(0x1000, 4) == b"abcd"
        assert memory.read_bytes(0x2000, 4) == b"\x00" * 4
        # And the newer snapshot remains restorable afterwards.
        memory.restore(second)
        assert memory.read_bytes(0x1000, 3) == b"one"

    def test_perm_changes_are_rewound_and_reported(self):
        memory = self._memory()
        snap = memory.snapshot()
        memory.set_perms(0x1000, PAGE_SIZE, PERM_R)
        changed, perms_changed = memory.restore(snap)
        assert perms_changed
        memory.write_byte(0x1000, 0x41)  # writable again

    def test_write_word_and_write_byte_break_cow(self):
        memory = self._memory()
        snap = memory.snapshot()
        memory.write_word(0x1FFC, 0xDEADBEEF)   # last word of page 1
        memory.write_byte(0x2000, 7)
        assert memory.read_word(0x1FFC) == 0xDEADBEEF
        assert snap.pages[1][-4:] == b"\x00" * 4  # frozen copy untouched
        memory.restore(snap)
        assert memory.read_word(0x1FFC) == 0


# ---------------------------------------------------------------------------
# Machine-level differential trials
# ---------------------------------------------------------------------------


def _machine_state(machine: Machine) -> tuple:
    return (
        tuple(machine.cpu.regs),
        machine.cpu.ip,
        (machine.cpu.zf, machine.cpu.lt, machine.cpu.ult),
        machine.current_ip,
        {page: bytes(buf) for page, buf in machine.memory._pages.items()},
        dict(machine.memory._perms),
        machine.output.getvalue(),
    )


def _trial(machine: Machine, feed: bytes, budget: int = 200_000) -> tuple:
    machine.input.feed(feed)
    result = machine.run(budget)
    return summarize(result), _machine_state(machine)


@pytest.fixture(params=[True, False], ids=["blocks", "stepped"])
def block_default(request):
    """Run every trial sequence under both dispatch strategies."""
    previous = machine_module.BLOCK_CACHE_DEFAULT
    machine_module.BLOCK_CACHE_DEFAULT = request.param
    try:
        yield request.param
    finally:
        machine_module.BLOCK_CACHE_DEFAULT = previous


def _fig1_exploit_payloads() -> tuple:
    """The Fig. 1 injection exploit payload plus benign inputs, built
    from the attacker's study exactly like the attack pipeline."""
    from repro.attacks import shellcode
    from repro.attacks.payloads import smash
    from repro.attacks.study import locate_overflow
    from repro.programs.builders import build_fig1

    local = build_fig1(NONE, wide_open=True)
    site = locate_overflow(local, frames_up=1)
    exploit = smash(site.offset_to_return, site.buffer_addr,
                    prefix=shellcode.spawn_shell())
    return exploit, b"hello\n", b"A" * 8 + b"\n"


class TestSnapshotTrialsIdentical:
    """Restore-based trial N must equal fresh-machine trial N."""

    def _compare(self, build_target, feeds, block_default):
        builder = build_target
        warm = builder()
        machine = warm.machine if hasattr(warm, "machine") else warm
        snap = machine.snapshot()
        warm_runs = []
        for feed in feeds:
            machine.restore(snap)
            warm_runs.append(_trial(machine, feed))
        cold_runs = []
        for feed in feeds:
            fresh = builder()
            fresh_machine = (fresh.machine
                            if hasattr(fresh, "machine") else fresh)
            cold_runs.append(_trial(fresh_machine, feed))
        assert warm_runs == cold_runs
        return machine, warm_runs

    def test_fig1_exploit_trials(self, block_default):
        from repro.programs.builders import build_fig1

        exploit, benign, overflowish = _fig1_exploit_payloads()
        machine, runs = self._compare(
            lambda: build_fig1(NONE, seed=3, wide_open=True),
            [benign, exploit, overflowish, exploit, benign],
            block_default,
        )
        shell_runs = [summary for summary, _ in runs if summary[6]]
        assert len(shell_runs) == 2  # both exploit trials, neither benign
        if block_default and machine.config.block_cache:
            # Code pages were never dirtied, so the translated blocks
            # survived every restore.  (config.block_cache re-checks
            # because the REPRO_BLOCK_CACHE env override outranks the
            # module default this fixture flips.)
            assert machine.block_cache_stats()["blocks"] > 0

    def test_rop_chain_trials(self, block_default):
        from repro.attacks.gadgets import GadgetCatalog, build_shell_chain
        from repro.attacks.payloads import smash
        from repro.attacks.study import locate_overflow
        from repro.programs.builders import build_fig1

        local = build_fig1(DEP, wide_open=True)
        site = locate_overflow(local, frames_up=1)
        chain = build_shell_chain(
            GadgetCatalog.from_image_segments(local.image.segments))
        assert chain is not None
        payload = smash(site.offset_to_return, chain[0], *chain[1:])
        self._compare(
            lambda: build_fig1(DEP, seed=5, wide_open=True),
            [payload, b"plain\n", payload],
            block_default,
        )

    def test_self_modifying_program_trials(self, block_default):
        # The self-patching loop from the block differential suite:
        # each trial dirties its own code page, so every restore must
        # rewind the patch (and flush stale translations) for the next
        # trial to behave identically.
        loop, exit_at = 0x100C, 0x103A
        program = encode_many([
            build.mov_ri(R0, 0),
            build.mov_ri(R2, 0),
            build.add_ri(R0, 1),            # patched to `add r0, 2`
            build.add_ri(R2, 1),
            build.cmp_ri(R2, 2),
            build.jz(exit_at),
            build.mov_ri(R1, loop),
            build.mov_ri(R3, 0x0002000B),
            build.store(R3, Mem(R1, 0)),
            build.jmp_abs(loop),
            build.sys(3),
        ])

        def builder():
            machine = Machine(MachineConfig(
                block_cache=machine_module.BLOCK_CACHE_DEFAULT))
            machine.memory.map_region(CODE, 0x1000, PERM_RWX)
            machine.memory.map_region(DATA, 0x1000, PERM_RW)
            machine.memory.map_region(STACK_BASE, 0x10000, PERM_RW)
            machine.memory.write_bytes(CODE, program)
            machine.cpu.ip = CODE
            machine.cpu.regs[:] = SEED_REGS
            return machine

        machine, runs = self._compare(builder, [b"", b"", b""],
                                      block_default)
        for summary, _ in runs:
            assert summary[1] == 3  # 1 (original pass) + 2 (patched)

    def test_restore_resets_ip_and_registers_mid_run(self, block_default):
        from repro.programs.builders import build_fig1

        target = build_fig1(NONE, seed=9, wide_open=True)
        machine = target.machine
        snap = machine.snapshot()
        before = _machine_state(machine)
        machine.input.feed(b"interrupted\n")
        machine.run(40)  # stop mid-program, registers/IP in flight
        machine.restore(snap)
        assert _machine_state(machine) == before


# ---------------------------------------------------------------------------
# Hypothesis: interleavings never leak dirty pages into later restores
# ---------------------------------------------------------------------------

#: A looping probe program: stores a counter through DATA, bumping a
#: register each pass, so every "run" burst dirties data pages and
#: advances machine state.
_PROBE = encode_many([
    build.mov_ri(R1, DATA),                 # 0x1000
    build.store(R0, Mem(R1, 0)),            # loop: spill the counter
    build.add_ri(R0, 1),
    build.storeb(R0, Mem(R1, 0x20)),
    build.jmp_abs(0x1006),
])

_OPS = st.one_of(
    st.tuples(st.just("run"), st.integers(1, 60)),
    st.tuples(st.just("write"),
              st.integers(0, 0xFF0), st.integers(0, 0xFFFFFFFF)),
    st.tuples(st.just("snapshot"), st.just(0)),
    st.tuples(st.just("restore"), st.integers(0, 7)),
)


class TestSnapshotProperty:
    @settings(max_examples=80, deadline=None)
    @given(st.lists(_OPS, min_size=1, max_size=24))
    def test_restore_reproduces_captured_state(self, ops):
        machine = Machine(MachineConfig())
        machine.memory.map_region(CODE, 0x1000, PERM_RWX)
        machine.memory.map_region(DATA, 0x1000, PERM_RW)
        machine.memory.map_region(STACK_BASE, 0x10000, PERM_RW)
        machine.memory.write_bytes(CODE, _PROBE)
        machine.cpu.ip = CODE

        snaps: list[tuple] = []
        for op in ops:
            if op[0] == "run":
                machine.run(max_instructions=op[1])
            elif op[0] == "write":
                machine.memory.write_word(DATA + op[1], op[2])
            elif op[0] == "snapshot":
                # The deepcopy is the oracle: the machine state, cloned
                # outside the CoW machinery entirely.
                snaps.append((machine.snapshot(),
                              copy.deepcopy(_machine_state(machine))))
            elif snaps:
                snap, oracle = snaps[op[1] % len(snaps)]
                machine.restore(snap)
                assert _machine_state(machine) == oracle
        # Every snapshot must still restore exactly at the end, newest
        # to oldest (stacked restores across epochs).
        for snap, oracle in reversed(snaps):
            machine.restore(snap)
            assert _machine_state(machine) == oracle
