"""Tests for the static analyzer and fuzzer."""

import pytest

from repro.analysis import (
    CORPUS,
    analyze_source,
    compare_detection,
    evaluate_on_corpus,
    fuzz_campaign,
)
from repro.mitigations import NONE, TESTING


class TestStaticAnalyzerRules:
    def test_r1_constant_overflow(self):
        findings = analyze_source("""
void main() { char b[8]; read(0, b, 16); }
""")
        assert any(f.rule == "R1" for f in findings)
        assert all(f.confidence == "definite" for f in findings)

    def test_r1_exact_size_clean(self):
        assert not analyze_source("void main() { char b[8]; read(0, b, 8); }")

    def test_r2_variable_length_possible(self):
        findings = analyze_source("""
int read_int() { int v = 0; read(0, &v, 4); return v; }
void main() { char b[8]; int n = read_int(); read(0, b, n); }
""")
        r2 = [f for f in findings if f.rule == "R2"]
        assert r2 and r2[0].confidence == "possible"

    def test_r3_unguarded_index(self):
        findings = analyze_source("""
int read_int() { int v = 0; read(0, &v, 4); return v; }
void main() { int t[8]; int i = read_int(); t[i] = 1; }
""")
        assert any(f.rule == "R3" for f in findings)

    def test_r3_guard_suppresses(self):
        findings = analyze_source("""
int read_int() { int v = 0; read(0, &v, 4); return v; }
void main() { int t[8]; int i = read_int(); if (i < 8) { t[i] = 1; } }
""")
        assert not any(f.rule == "R3" for f in findings)

    def test_r3_loop_condition_counts_as_guard(self):
        findings = analyze_source("""
void main() { int t[8]; int i; for (i = 0; i < 8; i = i + 1) { t[i] = 1; } }
""")
        assert not findings

    def test_r3_wrong_bound_guard_still_flagged(self):
        findings = analyze_source("""
void main() { int t[8]; int i; for (i = 0; i <= 8; i = i + 1) { t[i] = 1; } }
""")
        assert any(f.rule == "R3" for f in findings)

    def test_r3_guard_scope_ends(self):
        findings = analyze_source("""
int read_int() { int v = 0; read(0, &v, 4); return v; }
void main() {
    int t[8];
    int i = read_int();
    if (i < 8) { t[i] = 1; }
    t[i] = 2;
}
""")
        assert any(f.rule == "R3" for f in findings)

    def test_r4_constant_oob(self):
        findings = analyze_source("void main() { int t[4]; t[4] = 1; }")
        assert any(f.rule == "R4" for f in findings)

    def test_r4_constant_in_bounds(self):
        assert not analyze_source("void main() { int t[4]; t[3] = 1; }")

    def test_r5_escaping_local(self):
        findings = analyze_source("""
int *f() { int x = 1; return &x; }
void main() { f(); }
""")
        assert any(f.rule == "R5" for f in findings)

    def test_r5_global_ok(self):
        assert not analyze_source("""
static int cell;
int *f() { return &cell; }
void main() { f(); }
""")

    def test_findings_carry_lines(self):
        findings = analyze_source("void main() {\n char b[8];\n read(0, b, 16);\n}")
        assert findings[0].line == 3

    ALIASED = """
void fill(char *p, int n) {{
    int i;
    for (i = 0; i < n; i = i + 1) {{ p[i] = 'x'; }}
}}
void main() {{
    char buf[8];
    fill(buf, {length});
    write(1, buf, 8);
}}
"""

    def test_r6_catches_aliased_overflow(self):
        findings = analyze_source(self.ALIASED.format(length=32),
                                  interprocedural=True)
        assert any(f.rule == "R6" for f in findings)

    def test_r6_not_without_interprocedural(self):
        assert not analyze_source(self.ALIASED.format(length=32))

    def test_r6_in_bounds_clean(self):
        assert not analyze_source(self.ALIASED.format(length=8),
                                  interprocedural=True)

    def test_r6_constant_bound_in_callee(self):
        source = """
void fill(char *p) {
    int i;
    for (i = 0; i < 32; i = i + 1) { p[i] = 'x'; }
}
void main() {
    char buf[8];
    fill(buf);
}
"""
        findings = analyze_source(source, interprocedural=True)
        assert any(f.rule == "R6" for f in findings)

    def test_r6_nonconstant_caller_arg_stays_silent(self):
        source = """
int read_int() { int v = 0; read(0, &v, 4); return v; }
void fill(char *p, int n) {
    int i;
    for (i = 0; i < n; i = i + 1) { p[i] = 'x'; }
}
void main() {
    char buf[8];
    fill(buf, read_int());
}
"""
        findings = analyze_source(source, interprocedural=True)
        assert not any(f.rule == "R6" for f in findings)


class TestCorpusEvaluation:
    def test_every_entry_behaves_as_labelled(self):
        evaluation = evaluate_on_corpus()
        for row in evaluation["rows"]:
            expected = row["expected"]
            if expected == "hit":
                assert row["vulnerable"] and row["flagged_any"], row["name"]
            elif expected == "clean":
                assert not row["vulnerable"] and not row["flagged_any"], row["name"]
            elif expected == "false-positive":
                assert not row["vulnerable"] and row["flagged_any"], row["name"]
            elif expected == "miss":
                assert row["vulnerable"] and not row["flagged_any"], row["name"]

    def test_tradeoff_shape(self):
        """All-findings: FPs exist; definite-only: perfect precision,
        reduced recall -- the Section III-C2 tradeoff."""
        evaluation = evaluate_on_corpus()
        assert evaluation["all_findings"]["fp"] >= 1
        assert evaluation["all_findings"]["fn"] >= 1
        assert evaluation["definite_only"]["precision"] == 1.0
        assert (evaluation["definite_only"]["recall"]
                < evaluation["all_findings"]["recall"])

    def test_corpus_compiles_and_runs(self):
        """Every corpus program must at least build (unsafe mode)."""
        from repro.minic import compile_source

        for entry in CORPUS:
            compile_source(entry.source, entry.name)


class TestFuzzer:
    def test_plain_misses_silent_corruption(self):
        report = fuzz_campaign("data_only", NONE, runs=80, seed=5)
        assert report.silent_class > 0
        assert report.detected_silent == 0

    def test_asan_catches_silent_corruption(self):
        report = fuzz_campaign("data_only", TESTING, runs=80, seed=5)
        assert report.silent_class > 0
        assert report.detected_silent == report.silent_class
        assert "RedZoneFault" in report.faults

    def test_comparison_shape(self):
        comparison = compare_detection(runs=60, seed=9)
        assert comparison["asan_rate"] >= comparison["plain_rate"]
        assert comparison["asan_silent_rate"] == 1.0
        assert comparison["plain_silent_rate"] == 0.0

    def test_deterministic_by_seed(self):
        first = fuzz_campaign("data_only", NONE, runs=30, seed=3)
        second = fuzz_campaign("data_only", NONE, runs=30, seed=3)
        assert first.detected == second.detected
        assert first.triggering == second.triggering
