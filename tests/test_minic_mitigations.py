"""Tests for the compiler's mitigation passes and secure-PMA codegen."""

import pytest

from repro.errors import BoundsFault, CanaryFault, RedZoneFault
from repro.machine import RunStatus
from repro.minic import CompileOptions, compile_source, compile_to_asm
from repro.mitigations import CANARY, MitigationConfig, NONE, TESTING
from tests.conftest import c_program, run_c

OVERFLOWING = """
void main() {
    char buf[16];
    read(0, buf, 64);
    write(1, buf, 16);
}
"""


class TestCanaries:
    def test_emitted_in_prologue_and_epilogue(self):
        asm = compile_to_asm("void f() { int x; x = 1; }", "m",
                             CompileOptions(stack_canaries=True))
        assert "__canary" in asm
        assert "sys 14" in asm  # __stack_chk_fail

    def test_not_emitted_by_default(self):
        asm = compile_to_asm("void f() { int x; x = 1; }", "m")
        assert "__canary" not in asm

    def test_benign_run_unaffected(self):
        result = run_c(OVERFLOWING, stdin=b"x" * 10, config=CANARY)
        assert result.status is RunStatus.EXITED

    def test_overflow_detected_before_return_hijack(self):
        result = run_c(OVERFLOWING, stdin=b"x" * 40, config=CANARY)
        assert isinstance(result.fault, CanaryFault)

    def test_without_canary_same_overflow_hijacks(self):
        result = run_c(OVERFLOWING, stdin=b"\x41" * 40, config=NONE)
        assert result.status is RunStatus.FAULT
        assert not isinstance(result.fault, CanaryFault)

    def test_overflow_between_locals_not_detected(self):
        """The canary's blind spot: corruption below the canary."""
        source = """
void main() {
    int sentinel = 7;
    char buf[16];
    read(0, buf, 20);
    print_int(sentinel);
}
"""
        result = run_c(source, stdin=b"A" * 20, config=CANARY)
        assert result.status is RunStatus.EXITED
        assert result.output != b"7\n"  # silently corrupted

    def test_canary_value_differs_per_load(self):
        from repro.programs.builders import build_victim

        values = set()
        for seed in range(4):
            program = build_victim("fig1_vulnerable", CANARY, seed=seed)
            values.add(program.machine.memory.read_word(
                program.image.canary_cell))
        assert len(values) == 4


class TestBoundsChecks:
    def test_chk_emitted_in_safe_mode(self):
        asm = compile_to_asm("void f() { int a[4]; a[1] = 2; }", "m",
                             CompileOptions(bounds_checks=True))
        assert "chk r0, 4" in asm

    def test_in_bounds_access_unaffected(self):
        result = run_c("""
void main() {
    int a[4];
    int i;
    for (i = 0; i < 4; i = i + 1) { a[i] = i; }
    print_int(a[3]);
}
""", options=CompileOptions(bounds_checks=True))
        assert result.output == b"3\n"

    def test_out_of_bounds_index_faults(self):
        result = run_c("""
int read_int() { int v = 0; read(0, &v, 4); return v; }
void main() {
    int a[4];
    a[2] = 5;
    print_int(a[2]);
}
""".replace("a[2] = 5", "int i = 4; a[i] = 5"),
            options=CompileOptions(bounds_checks=False))
        # sanity: without checks this silently corrupts
        assert result.status is RunStatus.EXITED

        result = run_c("""
void main() {
    int a[4];
    int i = 4;
    a[i] = 5;
}
""", options=CompileOptions(bounds_checks=True))
        assert isinstance(result.fault, BoundsFault)

    def test_negative_index_faults(self):
        result = run_c("""
void main() {
    int a[4];
    int i = 0 - 1;
    a[i] = 5;
}
""", options=CompileOptions(bounds_checks=True))
        assert isinstance(result.fault, BoundsFault)

    def test_read_clamped_to_buffer(self):
        result = run_c("""
void main() {
    char buf[8];
    read(0, buf, 16);
}
""", stdin=b"y" * 16, options=CompileOptions(bounds_checks=True))
        assert isinstance(result.fault, BoundsFault)


class TestASan:
    def test_poison_unpoison_emitted(self):
        asm = compile_to_asm("void f() { char b[8]; b[0] = 1; }", "m",
                             CompileOptions(asan=True))
        assert "sys 12" in asm and "sys 13" in asm

    def test_adjacent_overflow_detected(self):
        source = """
void main() {
    int sentinel = 7;
    char buf[16];
    read(0, buf, 20);
    print_int(sentinel);
}
"""
        result = run_c(source, stdin=b"A" * 20, config=TESTING)
        assert isinstance(result.fault, RedZoneFault)

    def test_benign_run_unaffected(self):
        source = """
void main() {
    char buf[16];
    int i;
    for (i = 0; i < 16; i = i + 1) { buf[i] = 'a'; }
    write(1, buf, 16);
}
"""
        result = run_c(source, config=TESTING)
        assert result.status is RunStatus.EXITED
        assert result.output == b"a" * 16

    def test_underflow_detected(self):
        source = """
void main() {
    char buf[8];
    char *p = buf;
    *(p - 1) = 'x';
}
"""
        result = run_c(source, config=TESTING)
        assert isinstance(result.fault, RedZoneFault)

    def test_zones_unpoisoned_on_return(self):
        """After a function returns, its red zones must not linger and
        poison an unrelated frame reusing the stack."""
        source = """
int first() { char a[8]; a[0] = 1; return a[0]; }
int second() { int x = 5; int y = 6; return x + y; }
void main() {
    first();
    print_int(second());
}
"""
        result = run_c(source, config=TESTING)
        assert result.status is RunStatus.EXITED
        assert result.output == b"11\n"


class TestSecureModuleCodegen:
    def test_insecure_module_entries(self):
        obj = compile_source("""
static int state = 1;
int api() { return state; }
static int internal() { return 2; }
""", "mod", CompileOptions(protected=True))
        assert obj.entry_points == ["api"]
        assert obj.protected

    def test_secure_module_runtime_cells(self):
        asm = compile_to_asm("""
int get(int (*cb)()) { return cb(); }
""", "mod", CompileOptions.secure_module())
        assert "__priv_stack_top" in asm
        assert "__saved_sp" in asm
        assert "__busy" in asm
        assert "__reentry_mod" in asm
        assert "__module_start" in asm  # pointer check bounds

    def test_scrubbing_emitted(self):
        asm = compile_to_asm("int api() { return 5; }", "mod",
                             CompileOptions.secure_module())
        for reg in range(1, 8):
            assert f"mov r{reg}, 0" in asm

    def test_plain_compile_has_no_pma_artifacts(self):
        asm = compile_to_asm("int api() { return 5; }", "mod")
        assert "__priv_stack" not in asm
        assert "__busy" not in asm
