"""Instruction-semantics tests: each opcode against a bare machine."""

import pytest

from repro.errors import BoundsFault, DivisionFault, InvalidInstructionFault
from repro.isa import BP, Mem, R0, R1, R2, SP, build, encode_many, to_unsigned
from repro.machine import Machine, MachineConfig, RunStatus


def execute(machine: Machine, instructions, steps=None):
    """Write instructions at 0x1000 and step through them."""
    machine.memory.write_bytes(0x1000, encode_many(instructions))
    machine.cpu.ip = 0x1000
    for _ in range(steps if steps is not None else len(instructions)):
        machine.step()
    return machine


class TestDataMovement:
    def test_mov_ri_rr(self, bare_machine):
        execute(bare_machine, [build.mov_ri(R0, 123), build.mov_rr(R1, R0)])
        assert bare_machine.cpu.regs[R1] == 123

    def test_load_store_word(self, bare_machine):
        bare_machine.cpu.regs[R2] = 0x00200000
        execute(bare_machine, [
            build.mov_ri(R0, 0xCAFEBABE),
            build.store(R0, Mem(R2, 8)),
            build.load(R1, Mem(R2, 8)),
        ])
        assert bare_machine.cpu.regs[R1] == 0xCAFEBABE

    def test_loadb_zero_extends(self, bare_machine):
        bare_machine.cpu.regs[R2] = 0x00200000
        bare_machine.memory.write_word(0x00200000, 0xFFFFFFEE)
        execute(bare_machine, [build.loadb(R0, Mem(R2, 0))])
        assert bare_machine.cpu.regs[R0] == 0xEE

    def test_storeb_writes_one_byte(self, bare_machine):
        bare_machine.cpu.regs[R2] = 0x00200000
        bare_machine.memory.write_word(0x00200000, 0x11111111)
        bare_machine.cpu.regs[R0] = 0xABCD
        execute(bare_machine, [build.storeb(R0, Mem(R2, 0))])
        assert bare_machine.memory.read_word(0x00200000) == 0x111111CD

    def test_lea_computes_without_access(self, bare_machine):
        bare_machine.cpu.regs[BP] = 0xBFFF0000  # unmapped: lea must not touch it
        execute(bare_machine, [build.lea(R0, Mem(BP, -0x10))])
        assert bare_machine.cpu.regs[R0] == 0xBFFEFFF0

    def test_push_pop(self, bare_machine):
        sp0 = bare_machine.cpu.sp
        execute(bare_machine, [
            build.mov_ri(R0, 77), build.push(R0), build.pop(R1),
        ])
        assert bare_machine.cpu.regs[R1] == 77
        assert bare_machine.cpu.sp == sp0

    def test_stack_grows_down(self, bare_machine):
        sp0 = bare_machine.cpu.sp
        execute(bare_machine, [build.push(R0)])
        assert bare_machine.cpu.sp == sp0 - 4

    def test_pop_sp_pivots_the_stack(self, bare_machine):
        """POP SP is encodable and works: the ROP trampoline primitive."""
        bare_machine.memory.write_word(bare_machine.cpu.sp - 4, 0x00205000)
        bare_machine.cpu.sp -= 4
        execute(bare_machine, [build.pop(SP)])
        assert bare_machine.cpu.sp == 0x00205000


class TestArithmetic:
    @pytest.mark.parametrize("builder,a,b,expected", [
        (build.add_rr, 2, 3, 5),
        (build.sub_rr, 2, 3, to_unsigned(-1)),
        (build.mul_rr, 7, 6, 42),
        (build.and_rr, 0b1100, 0b1010, 0b1000),
        (build.or_rr, 0b1100, 0b1010, 0b1110),
        (build.xor_rr, 0b1100, 0b1010, 0b0110),
    ])
    def test_binary_ops(self, bare_machine, builder, a, b, expected):
        bare_machine.cpu.regs[R0] = a
        bare_machine.cpu.regs[R1] = b
        execute(bare_machine, [builder(R0, R1)])
        assert bare_machine.cpu.regs[R0] == expected

    def test_add_wraps_32_bits(self, bare_machine):
        bare_machine.cpu.regs[R0] = 0xFFFFFFFF
        bare_machine.cpu.regs[R1] = 2
        execute(bare_machine, [build.add_rr(R0, R1)])
        assert bare_machine.cpu.regs[R0] == 1

    def test_div_truncates_toward_zero(self, bare_machine):
        bare_machine.cpu.regs[R0] = to_unsigned(-7)
        bare_machine.cpu.regs[R1] = 2
        execute(bare_machine, [build.div_rr(R0, R1)])
        assert bare_machine.cpu.regs[R0] == to_unsigned(-3)  # C semantics

    def test_mod_sign_follows_dividend(self, bare_machine):
        bare_machine.cpu.regs[R0] = to_unsigned(-7)
        bare_machine.cpu.regs[R1] = 2
        execute(bare_machine, [build.mod_rr(R0, R1)])
        assert bare_machine.cpu.regs[R0] == to_unsigned(-1)

    def test_division_by_zero_faults(self, bare_machine):
        with pytest.raises(DivisionFault):
            execute(bare_machine, [build.div_rr(R0, R1)])

    def test_not_shl_shr(self, bare_machine):
        bare_machine.cpu.regs[R0] = 0xF0
        execute(bare_machine, [build.shl(R0, 4)])
        assert bare_machine.cpu.regs[R0] == 0xF00
        execute(bare_machine, [build.shr(R0, 8)])
        assert bare_machine.cpu.regs[R0] == 0xF
        execute(bare_machine, [build.not_r(R0)])
        assert bare_machine.cpu.regs[R0] == 0xFFFFFFF0


class TestControlFlow:
    def test_jmp_abs(self, bare_machine):
        execute(bare_machine, [build.jmp_abs(0x2000)], steps=1)
        assert bare_machine.cpu.ip == 0x2000

    def test_conditional_signed_vs_unsigned(self, bare_machine):
        # -1 < 1 signed, but 0xFFFFFFFF > 1 unsigned.
        bare_machine.cpu.regs[R0] = to_unsigned(-1)
        bare_machine.cpu.regs[R1] = 1
        execute(bare_machine, [
            build.cmp_rr(R0, R1), build.jl(0x3000),
        ], steps=2)
        assert bare_machine.cpu.ip == 0x3000  # signed: taken

        bare_machine.cpu.ip = 0x1000
        execute(bare_machine, [
            build.cmp_rr(R0, R1), build.jb(0x3000), build.nop(),
        ], steps=2)
        assert bare_machine.cpu.ip != 0x3000  # unsigned: not below

    @pytest.mark.parametrize("a,b,mnewhere", [
        (5, 5, {"jz": True, "jnz": False, "jle": True, "jge": True,
                "jl": False, "jg": False, "jb": False, "jae": True}),
        (3, 5, {"jz": False, "jnz": True, "jl": True, "jle": True,
                "jg": False, "jge": False, "jb": True, "jae": False}),
    ])
    def test_branch_predicates(self, bare_machine, a, b, mnewhere):
        for mnemonic, taken in mnewhere.items():
            bare_machine.cpu.regs[R0] = a
            bare_machine.cpu.regs[R1] = b
            builder = getattr(build, mnemonic)
            bare_machine.cpu.ip = 0x1000
            execute(bare_machine, [build.cmp_rr(R0, R1), builder(0x4000)], steps=2)
            assert (bare_machine.cpu.ip == 0x4000) == taken, mnemonic

    def test_call_pushes_return_address(self, bare_machine):
        execute(bare_machine, [build.call_abs(0x2000)], steps=1)
        assert bare_machine.cpu.ip == 0x2000
        # Return address = address after the 5-byte call.
        assert bare_machine.memory.read_word(bare_machine.cpu.sp) == 0x1005

    def test_ret_pops_into_ip(self, bare_machine):
        """The mechanism stack smashing abuses: whatever word sits at
        SP becomes the next instruction pointer."""
        bare_machine.memory.write_word(bare_machine.cpu.sp - 4, 0xDEAD0000)
        bare_machine.cpu.sp -= 4
        execute(bare_machine, [build.ret()], steps=1)
        assert bare_machine.cpu.ip == 0xDEAD0000

    def test_indirect_call(self, bare_machine):
        bare_machine.cpu.regs[R2] = 0x2000
        execute(bare_machine, [build.call_reg(R2)], steps=1)
        assert bare_machine.cpu.ip == 0x2000

    def test_chk_passes_in_bounds(self, bare_machine):
        bare_machine.cpu.regs[R0] = 15
        execute(bare_machine, [build.chk(R0, 16)])

    def test_chk_faults_out_of_bounds(self, bare_machine):
        bare_machine.cpu.regs[R0] = 16
        with pytest.raises(BoundsFault):
            execute(bare_machine, [build.chk(R0, 16)])

    def test_chk_is_unsigned(self, bare_machine):
        # A negative index is a huge unsigned value: must fault.
        bare_machine.cpu.regs[R0] = to_unsigned(-1)
        with pytest.raises(BoundsFault):
            execute(bare_machine, [build.chk(R0, 16)])


class TestFetch:
    def test_invalid_opcode_faults(self, bare_machine):
        bare_machine.memory.write_bytes(0x1000, b"\xff")
        with pytest.raises(InvalidInstructionFault):
            bare_machine.step()

    def test_halt_stops_run(self, bare_machine):
        bare_machine.memory.write_bytes(0x1000, encode_many([build.halt()]))
        result = bare_machine.run()
        assert result.status is RunStatus.HALTED

    def test_data_executes_as_code_when_rwx(self, bare_machine):
        """Without DEP there is no code/data distinction: bytes written
        as data run as instructions (direct code injection)."""
        payload = encode_many([build.mov_ri(R0, 99), build.halt()])
        bare_machine.memory.write_bytes(0x00200100, payload)  # "data" area
        bare_machine.cpu.ip = 0x00200100
        result = bare_machine.run()
        assert result.status is RunStatus.HALTED
        assert bare_machine.cpu.regs[R0] == 99
