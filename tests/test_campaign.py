"""The campaign runner: parity, rollback semantics, and observability.

The snapshot campaign must be a pure performance layer: its verdicts
have to match trial-by-trial rebuilds (``run_cold``) and survive the
process-pool fan-out unchanged.  The Figure 2 suite then checks the
*security* content -- a snapshot attacker brute-forces the PIN that an
in-run attacker is locked out of -- and the observe-layer tests pin
down the snapshot events and metrics.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import pytest

from repro.campaign import CampaignRunner, CampaignSession, ComposedTrial
from repro.experiments.campaign_exp import (
    Fig1Factory,
    PinGuessTrial,
    Ret2LibcGuessTrial,
    SecretFactory,
    aslr_guess_campaign,
    matrix_campaign,
    pin_bruteforce_campaign,
)
from repro.mitigations.config import MitigationConfig


def _guess_runner(bits: int = 2, jobs: int | None = None) -> CampaignRunner:
    from repro.attacks.study import locate_overflow
    from repro.programs.builders import build_fig1

    config = MitigationConfig(aslr_bits=bits)
    local = build_fig1(config.with_(aslr_bits=0), wide_open=True)
    site = locate_overflow(local, frames_up=1)
    trial = Ret2LibcGuessTrial(
        site.offset_to_return,
        local.symbol("libc_spawn_shell"),
        local.symbol("libc_exit"),
        bits,
        base_seed=42,
    )
    return CampaignRunner(Fig1Factory(config, 42), trial=trial, jobs=jobs)


class TestRunnerParity:
    def test_snapshot_equals_cold_rebuild(self):
        runner = _guess_runner()
        warm = runner.run(10)
        cold = runner.run_cold(10)
        assert warm.verdicts == cold.verdicts
        assert warm.mode == "snapshot" and cold.mode == "cold"
        assert warm.restored_pages > 0 and cold.restored_pages == 0

    def test_parallel_equals_sequential(self):
        sequential = _guess_runner(jobs=1).run(10)
        parallel = _guess_runner(jobs=2).run(10)
        assert parallel.verdicts == sequential.verdicts
        assert sequential.workers == 1
        assert parallel.workers == 2

    def test_parallel_respects_observer_factories(self):
        from repro.observe import MetricsCollector, observe_new_machines

        with observe_new_machines(lambda machine: MetricsCollector()):
            result = _guess_runner(jobs=2).run(4)
        assert result.workers == 1  # observers force in-process trials

    def test_composed_trial_from_mutator_and_verdict(self):
        def mutator(target, index):
            target.machine.input.feed(struct.pack("<II", 1, 1000 + index))

        def verdict(target, result, index):
            return target.machine.output.getvalue()

        runner = CampaignRunner(SecretFactory(), mutator, verdict,
                                max_instructions=500_000)
        result = runner.run(3)
        assert result.verdicts == [b"0\n"] * 3  # wrong PINs, fresh lockouts

    def test_runner_requires_trial_or_pair(self):
        with pytest.raises(ValueError):
            CampaignRunner(SecretFactory())


class TestRunnerLifecycle:
    def test_close_drops_cached_session(self):
        """close() must release the warm sequential session (a built
        machine plus its snapshot pages), not just the pool."""
        runner = _guess_runner(jobs=1)
        runner.run_items([0, 1])
        assert runner._session is not None
        runner.close()
        assert runner._session is None

    def test_degrade_to_sequential_warns(self):
        """jobs > 1 with observe_new_machines() factories active used
        to silently run sequentially; now it says why."""
        from repro.observe import MetricsCollector, observe_new_machines

        runner = _guess_runner(jobs=2)
        with observe_new_machines(lambda machine: MetricsCollector()):
            with pytest.warns(RuntimeWarning,
                              match="observe_new_machines"):
                runner.__enter__()
        assert runner._pool is None
        runner.close()

    def test_no_warning_without_factories(self):
        import warnings as warnings_module

        with _guess_runner(jobs=2) as runner:
            with warnings_module.catch_warnings():
                warnings_module.simplefilter("error")
                runner.run(4)


class TestSubmitItems:
    def trial_runner(self, jobs=None, chunksize=None):
        runner = _guess_runner(jobs=jobs)
        runner.chunksize = chunksize
        return runner

    def test_submit_matches_run_items_sequential(self):
        runner = self.trial_runner()
        direct = runner.run_items([0, 1, 2, 3]).verdicts
        pending = runner.submit_items([0, 1, 2, 3])
        assert pending.result().verdicts == direct
        assert pending.result() is pending.result()  # cached
        runner.close()

    def test_pipelined_submit_matches_barrier(self):
        """Two batches in flight (submit N+1 before resolving N) must
        produce the same verdicts as strictly sequential batches."""
        with self.trial_runner(jobs=2, chunksize=2) as runner:
            first = runner.submit_items([0, 1, 2, 3])
            second = runner.submit_items([4, 5, 6, 7])
            pipelined = (first.result().verdicts
                         + second.result().verdicts)
        barrier = self.trial_runner().run_items(range(8)).verdicts
        assert pipelined == barrier

    def test_chunksize_splits_work_units(self):
        with self.trial_runner(jobs=2, chunksize=1) as runner:
            pending = runner.submit_items([0, 1, 2, 3])
            assert len(pending._futures) == 4
            assert pending.result().trials == 4

    def test_cancel_abandons_pending_batch(self):
        with self.trial_runner(jobs=2) as runner:
            pending = runner.submit_items([0, 1])
            pending.cancel()
            assert pending.result().trials == 0

    def test_empty_submit(self):
        runner = self.trial_runner()
        assert runner.submit_items([]).result().verdicts == []

    def test_close_drains_pooled_pending(self):
        """Closing the runner with a pooled batch in flight must not
        orphan its futures: the batch is already executing, so close()
        drains it and the verdicts stay collectable afterwards."""
        direct = self.trial_runner().run_items([0, 1, 2, 3]).verdicts
        runner = self.trial_runner(jobs=2)
        runner.__enter__()
        pending = runner.submit_items([0, 1, 2, 3])
        runner.close()
        assert runner._pending == []
        result = pending.result()  # resolved during close, not re-run
        assert result.verdicts == direct
        assert result.trials == 4

    def test_close_cancels_lazy_pending(self):
        """A lazy (sequential) batch has not started when close() runs;
        resolving it later must not resurrect the warm session."""
        runner = self.trial_runner()
        pending = runner.submit_items([0, 1, 2, 3])
        runner.close()
        assert runner._pending == []
        assert pending.result().trials == 0
        assert runner._session is None  # close() really dropped it

    def test_cancel_then_result_is_empty(self):
        """cancel() before result() yields an empty CampaignResult on
        both the lazy and pooled paths, and settles the handle."""
        lazy = self.trial_runner()
        handle = lazy.submit_items([0, 1])
        handle.cancel()
        empty = handle.result()
        assert empty.verdicts == [] and empty.trials == 0
        assert lazy._pending == []
        with self.trial_runner(jobs=2) as runner:
            pooled = runner.submit_items([0, 1])
            pooled.cancel()
            assert pooled.result().trials == 0
            assert runner._pending == []


class TestRollbackAttack:
    def test_snapshot_attacker_defeats_lockout(self):
        # tries_left locks the in-run attacker out after 3 guesses...
        report = pin_bruteforce_campaign(pin_space=8, first_pin=1230,
                                         lockout_budget=10)
        assert report["in_run_locked_out"]
        # ...but rolling the module state back between guesses finds
        # the PIN (Section IV-C's motivation for hardware counters).
        assert report["rollback_found_pin"] == 1234

    def test_each_trial_sees_fresh_tries_left(self):
        session = CampaignSession(SecretFactory(), PinGuessTrial(1000))
        # Ten consecutive wrong guesses: without the per-trial rewind,
        # guesses 4..10 would hit a locked module and leak no decrement
        # behaviour; with it, every trial answers "0" from a live one.
        for index in range(10):
            assert session.run_trial(index) is None
        # The lockout is really rewound, not merely untriggered: the
        # right PIN still works on trial 11.
        assert session.run_trial(234) == 1234


class TestExperimentPorts:
    def test_guess_sweep_statistics(self):
        points = aslr_guess_campaign(bits_list=(0, 2), trials=16,
                                     base_seed=7)
        by_bits = {point.bits: point for point in points}
        assert by_bits[0].rate == 1.0      # no ASLR: every guess right
        assert by_bits[2].rate < 1.0       # entropy makes guesses miss
        assert by_bits[2].expected_rate == 0.25

    def test_matrix_campaign_row_verdicts(self):
        rows = {row["preset"]: row for row in matrix_campaign(trials=4)}
        assert rows["none"]["success"] == 4
        assert rows["dep"]["success"] == 4      # code reuse beats DEP
        assert rows["deployed"]["success"] == 0
        assert rows["deployed"]["detected"] == 4  # canary catches it


class TestSnapshotObservability:
    def test_metrics_count_snapshot_events(self):
        from repro.observe import MetricsCollector
        from repro.programs.builders import build_fig1

        metrics = MetricsCollector()
        target = build_fig1(MitigationConfig(), seed=1)
        target.machine.attach_observer(metrics)
        snap = target.machine.snapshot()
        writable = next(addr for addr, size
                        in target.machine.memory.mapped_regions()
                        if target.machine.memory.perms_at(addr) & 2)
        target.machine.memory.write_bytes(writable, b"dirty")
        target.machine.restore(snap)
        target.machine.restore(snap)
        counters = metrics.snapshot()["snapshots"]
        assert counters["taken"] == 1
        assert counters["restored"] == 2
        assert counters["dirty_pages_restored"] >= 1

    def test_event_trace_records_snapshot_events(self):
        from repro.observe import EventTrace
        from repro.programs.builders import build_fig1

        trace = EventTrace(include_memory=False)
        target = build_fig1(MitigationConfig(), seed=1)
        target.machine.attach_observer(trace)
        snap = target.machine.snapshot()
        target.machine.restore(snap)
        kinds = [event.kind for event in trace.events]
        assert "snapshot_taken" in kinds
        assert "snapshot_restored" in kinds


class TestCLI:
    def test_campaign_registered_with_seed_threading(self):
        from repro.experiments.__main__ import EXPERIMENTS, run_e6

        assert "campaign" in EXPERIMENTS
        # --seed makes e6 reproducible: same seed, same rendered sweep.
        assert run_e6(seed=3) == run_e6(seed=3)
