"""Tests for mutually distrustful protected modules."""

import pytest

from repro.attacks.payloads import p32
from repro.errors import ProtectionFault
from repro.experiments.multimodule_exp import build_multimodule, multimodule_report
from repro.machine import RunStatus


class TestMultiModule:
    @pytest.fixture(scope="class")
    def report(self):
        return multimodule_report()

    def test_two_modules_registered(self):
        program = build_multimodule()
        names = {module.name for module in program.machine.pma.modules}
        assert names == {"module_a", "module_b"}

    def test_both_serve_clients(self, report):
        assert report["a_serves_client"]
        assert report["b_serves_client"]

    def test_cooperation_through_entry_points(self, report):
        """A's secure outcall composes with B's secure entry stub."""
        assert report["a_calls_b_through_entry"]

    def test_key_separation(self, report):
        assert report["distinct_module_keys"]
        assert report["b_cannot_unseal_a"]

    def test_mutual_isolation(self, report):
        assert report["a_probing_b_denied"]
        assert report["a_reads_own_secret"]
        assert report["benign_probe_ok"]

    def test_partial_output_before_denial(self, report):
        """The hostile probe faults only at the B access: everything
        before it (A's and B's honest service) already happened."""
        assert report["a_probe_output_before_fault"][:4] == [111, 222, 222, -1]

    def test_main_cannot_probe_either_module(self):
        program = build_multimodule()
        # main reads module A's secret directly (not via probe).
        secret_a = program.image.symbol("module_a:secret_a")
        program.feed(p32(0))
        program.run(100_000)
        with pytest.raises(ProtectionFault):
            program.machine.current_module = None
            program.machine.read_word(secret_a)

    def test_b_entered_only_at_entry_points(self):
        from repro.asm import assemble
        from repro.minic import compile_source
        from repro.minic.compiler import options_from_mitigations
        from repro.mitigations import NONE
        from repro.link import load
        from repro.programs import multimodule
        from repro.programs.builders import libc_object

        module_options = options_from_mitigations(NONE, protected=True,
                                                  secure=True)
        b_obj = compile_source(multimodule.MODULE_B, "module_b", module_options)
        study = load([
            assemble(".text\n.global main\nmain: mov r0, 0\nsys 3\n", "main"),
            b_obj, libc_object(),
        ])
        entry = study.image.symbol("get_secret_b")
        hostile = assemble(f"""
.text
.global main
main:
    mov r0, 0x{entry + 8:x}
    call r0
    sys 3
""", "main")
        b_obj = compile_source(multimodule.MODULE_B, "module_b", module_options)
        program = load([hostile, b_obj, libc_object()])
        result = program.run()
        assert isinstance(result.fault, ProtectionFault)
